"""HTTP/2 frame wire format (RFC 7540 §4, §6) plus ORIGIN (RFC 8336).

Every frame serializes to and parses from the real byte layout:

    +-----------------------------------------------+
    |                 Length (24)                   |
    +---------------+---------------+---------------+
    |   Type (8)    |   Flags (8)   |
    +-+-------------+---------------+-------------------------------+
    |R|                 Stream Identifier (31)                      |
    +=+=============================================================+
    |                   Frame Payload (0...)                      ...
    +---------------------------------------------------------------+

The ORIGIN frame (type 0xC) payload is a sequence of Origin-Entry
fields, each a 16-bit length followed by that many bytes of
ASCII-serialized origin (RFC 8336 §2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.h2.errors import ErrorCode, H2ConnectionError

FRAME_HEADER_LEN = 9

#: The 9-byte frame header packed as one struct: the first 32-bit word
#: carries ``(length << 8) | type``, which is exactly the wire layout of
#: the 24-bit length followed by the type octet.
_HEADER_STRUCT = struct.Struct(">IBI")

# Frame type codes.
TYPE_DATA = 0x0
TYPE_HEADERS = 0x1
TYPE_PRIORITY = 0x2
TYPE_RST_STREAM = 0x3
TYPE_SETTINGS = 0x4
TYPE_PUSH_PROMISE = 0x5
TYPE_PING = 0x6
TYPE_GOAWAY = 0x7
TYPE_WINDOW_UPDATE = 0x8
TYPE_CONTINUATION = 0x9
TYPE_ALTSVC = 0xA
TYPE_ORIGIN = 0xC  # RFC 8336
TYPE_CERTIFICATE = 0xD  # draft-ietf-httpbis-http2-secondary-certs

# Flag bits.
FLAG_END_STREAM = 0x1   # DATA, HEADERS
FLAG_ACK = 0x1          # SETTINGS, PING
FLAG_END_HEADERS = 0x4  # HEADERS, PUSH_PROMISE, CONTINUATION
FLAG_PADDED = 0x8       # DATA, HEADERS, PUSH_PROMISE
FLAG_PRIORITY = 0x20    # HEADERS
FLAG_TO_BE_CONTINUED = 0x1  # CERTIFICATE (secondary-certs draft)

#: The client connection preface (RFC 7540 §3.5).
CONNECTION_PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"


@dataclass
class Frame:
    """Base frame; concrete classes define payload layout."""

    stream_id: int = 0
    flags: int = 0
    type_code: int = field(default=-1, init=False)

    def payload(self) -> bytes:
        raise NotImplementedError

    def serialize(self) -> bytes:
        body = self.payload()
        if len(body) > 2**24 - 1:
            raise H2ConnectionError(
                ErrorCode.FRAME_SIZE_ERROR,
                f"payload of {len(body)} bytes exceeds the 24-bit length",
            )
        return _HEADER_STRUCT.pack(
            (len(body) << 8) | self.type_code,
            self.flags,
            self.stream_id & 0x7FFFFFFF,
        ) + body

    def serialize_into(self, out: bytearray) -> None:
        """Append this frame's wire bytes to ``out`` without building an
        intermediate ``bytes`` object per frame."""
        body = self.payload()
        if len(body) > 2**24 - 1:
            raise H2ConnectionError(
                ErrorCode.FRAME_SIZE_ERROR,
                f"payload of {len(body)} bytes exceeds the 24-bit length",
            )
        out += _HEADER_STRUCT.pack(
            (len(body) << 8) | self.type_code,
            self.flags,
            self.stream_id & 0x7FFFFFFF,
        )
        out += body


@dataclass
class DataFrame(Frame):
    data: bytes = b""
    pad_length: int = 0

    def __post_init__(self) -> None:
        self.type_code = TYPE_DATA
        if self.pad_length:
            self.flags |= FLAG_PADDED

    @property
    def end_stream(self) -> bool:
        return bool(self.flags & FLAG_END_STREAM)

    def payload(self) -> bytes:
        if self.flags & FLAG_PADDED:
            return (
                struct.pack(">B", self.pad_length)
                + self.data
                + b"\x00" * self.pad_length
            )
        return self.data

    @property
    def flow_controlled_length(self) -> int:
        """DATA frames count their whole payload against the window."""
        return len(self.payload())


@dataclass
class HeadersFrame(Frame):
    header_block: bytes = b""
    pad_length: int = 0

    def __post_init__(self) -> None:
        self.type_code = TYPE_HEADERS
        if self.pad_length:
            self.flags |= FLAG_PADDED

    @property
    def end_stream(self) -> bool:
        return bool(self.flags & FLAG_END_STREAM)

    @property
    def end_headers(self) -> bool:
        return bool(self.flags & FLAG_END_HEADERS)

    def payload(self) -> bytes:
        if self.flags & FLAG_PADDED:
            return (
                struct.pack(">B", self.pad_length)
                + self.header_block
                + b"\x00" * self.pad_length
            )
        return self.header_block


@dataclass
class PriorityFrame(Frame):
    dependency: int = 0
    weight: int = 16
    exclusive: bool = False

    def __post_init__(self) -> None:
        self.type_code = TYPE_PRIORITY

    def payload(self) -> bytes:
        dep = self.dependency | (0x80000000 if self.exclusive else 0)
        return struct.pack(">IB", dep, self.weight - 1)


@dataclass
class RstStreamFrame(Frame):
    error_code: ErrorCode = ErrorCode.NO_ERROR

    def __post_init__(self) -> None:
        self.type_code = TYPE_RST_STREAM

    def payload(self) -> bytes:
        return struct.pack(">I", int(self.error_code))


@dataclass
class SettingsFrame(Frame):
    settings: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        self.type_code = TYPE_SETTINGS

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    def payload(self) -> bytes:
        if self.is_ack and self.settings:
            raise H2ConnectionError(
                ErrorCode.FRAME_SIZE_ERROR, "SETTINGS ACK must be empty"
            )
        return b"".join(
            struct.pack(">HI", identifier, value)
            for identifier, value in self.settings
        )


@dataclass
class PushPromiseFrame(Frame):
    promised_stream_id: int = 0
    header_block: bytes = b""

    def __post_init__(self) -> None:
        self.type_code = TYPE_PUSH_PROMISE

    def payload(self) -> bytes:
        return struct.pack(">I", self.promised_stream_id) + self.header_block


@dataclass
class PingFrame(Frame):
    opaque: bytes = b"\x00" * 8

    def __post_init__(self) -> None:
        self.type_code = TYPE_PING
        if len(self.opaque) != 8:
            raise H2ConnectionError(
                ErrorCode.FRAME_SIZE_ERROR,
                f"PING payload must be 8 bytes, got {len(self.opaque)}",
            )

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    def payload(self) -> bytes:
        return self.opaque


@dataclass
class GoAwayFrame(Frame):
    last_stream_id: int = 0
    error_code: ErrorCode = ErrorCode.NO_ERROR
    debug_data: bytes = b""

    def __post_init__(self) -> None:
        self.type_code = TYPE_GOAWAY

    def payload(self) -> bytes:
        return (
            struct.pack(">II", self.last_stream_id, int(self.error_code))
            + self.debug_data
        )


@dataclass
class WindowUpdateFrame(Frame):
    increment: int = 0

    def __post_init__(self) -> None:
        self.type_code = TYPE_WINDOW_UPDATE

    def payload(self) -> bytes:
        return struct.pack(">I", self.increment)


@dataclass
class ContinuationFrame(Frame):
    header_block: bytes = b""

    def __post_init__(self) -> None:
        self.type_code = TYPE_CONTINUATION

    @property
    def end_headers(self) -> bool:
        return bool(self.flags & FLAG_END_HEADERS)

    def payload(self) -> bytes:
        return self.header_block


@dataclass
class OriginFrame(Frame):
    """RFC 8336 ORIGIN frame.

    Sent by servers on stream 0 to advertise the *origin set*: the
    origins the server is authoritative for on this connection.  Flags
    are undefined and MUST be ignored; stream id MUST be 0.  Origins
    are ASCII serializations like ``https://images.example.com``.
    """

    origins: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.type_code = TYPE_ORIGIN
        if self.stream_id != 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                f"ORIGIN frame on stream {self.stream_id}; must be stream 0",
            )

    def payload(self) -> bytes:
        chunks = []
        for origin in self.origins:
            raw = origin.encode("ascii")
            if len(raw) > 0xFFFF:
                raise H2ConnectionError(
                    ErrorCode.FRAME_SIZE_ERROR,
                    f"origin {origin[:40]!r}... exceeds 65535 bytes",
                )
            chunks.append(struct.pack(">H", len(raw)) + raw)
        return b"".join(chunks)


@dataclass
class CertificateFrame(Frame):
    """Secondary-certificate CERTIFICATE frame (the §6.5 alternative).

    draft-ietf-httpbis-http2-secondary-certs: servers provide extra
    certificates on stream 0 *after* the handshake, so the TLS flight
    stays small while additional authority arrives on demand.  The
    payload here is a 1-byte cert id followed by a fragment of the
    serialized chain; ``TO_BE_CONTINUED`` (0x1) marks non-final
    fragments.
    """

    cert_id: int = 0
    fragment: bytes = b""

    def __post_init__(self) -> None:
        self.type_code = TYPE_CERTIFICATE
        if self.stream_id != 0:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                "CERTIFICATE frames belong on stream 0",
            )
        if not 0 <= self.cert_id <= 0xFF:
            raise H2ConnectionError(
                ErrorCode.PROTOCOL_ERROR,
                f"cert id {self.cert_id} outside one byte",
            )

    @property
    def to_be_continued(self) -> bool:
        return bool(self.flags & FLAG_TO_BE_CONTINUED)

    def payload(self) -> bytes:
        return bytes([self.cert_id]) + self.fragment


@dataclass
class UnknownFrame(Frame):
    """A frame of a type this endpoint does not implement.

    RFC 7540 §4.1: implementations MUST ignore and discard unknown
    frame types.  The frame is still surfaced so tests (and the buggy
    middlebox model from paper §6.7) can observe it.
    """

    raw_type: int = 0xFF
    raw_payload: bytes = b""

    def __post_init__(self) -> None:
        self.type_code = self.raw_type

    def payload(self) -> bytes:
        return self.raw_payload


#: Types a compliant endpoint recognizes.
KNOWN_TYPES = frozenset(
    {
        TYPE_DATA,
        TYPE_HEADERS,
        TYPE_PRIORITY,
        TYPE_RST_STREAM,
        TYPE_SETTINGS,
        TYPE_PUSH_PROMISE,
        TYPE_PING,
        TYPE_GOAWAY,
        TYPE_WINDOW_UPDATE,
        TYPE_CONTINUATION,
    }
)

#: Types recognized by an ORIGIN-aware endpoint.
KNOWN_TYPES_WITH_ORIGIN = KNOWN_TYPES | {TYPE_ORIGIN}


def _strip_padding(flags: int, body: bytes, frame_type: str) -> bytes:
    if not flags & FLAG_PADDED:
        return body
    if not body:
        raise H2ConnectionError(
            ErrorCode.PROTOCOL_ERROR, f"padded {frame_type} with empty payload"
        )
    pad_length = body[0]
    data = body[1:]
    if pad_length > len(data):
        raise H2ConnectionError(
            ErrorCode.PROTOCOL_ERROR,
            f"{frame_type} pad length {pad_length} exceeds payload",
        )
    return data[: len(data) - pad_length]


def _parse_data(stream_id: int, flags: int, body: bytes) -> Frame:
    data = _strip_padding(flags, body, "DATA")
    return DataFrame(stream_id=stream_id, flags=flags & ~FLAG_PADDED,
                     data=data)


def _parse_headers(stream_id: int, flags: int, body: bytes) -> Frame:
    block = _strip_padding(flags, body, "HEADERS")
    if flags & FLAG_PRIORITY:
        if len(block) < 5:
            raise H2ConnectionError(
                ErrorCode.FRAME_SIZE_ERROR, "HEADERS priority too short"
            )
        block = block[5:]  # priority fields are parsed but unused
    return HeadersFrame(
        stream_id=stream_id,
        flags=flags & ~(FLAG_PADDED | FLAG_PRIORITY),
        header_block=block,
    )


def _parse_priority(stream_id: int, flags: int, body: bytes) -> Frame:
    if len(body) != 5:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR,
            f"PRIORITY payload must be 5 bytes, got {len(body)}",
        )
    dep_raw = struct.unpack(">I", body[0:4])[0]
    return PriorityFrame(
        stream_id=stream_id,
        dependency=dep_raw & 0x7FFFFFFF,
        weight=body[4] + 1,
        exclusive=bool(dep_raw & 0x80000000),
    )


def _parse_rst_stream(stream_id: int, flags: int, body: bytes) -> Frame:
    if len(body) != 4:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR,
            f"RST_STREAM payload must be 4 bytes, got {len(body)}",
        )
    return RstStreamFrame(
        stream_id=stream_id,
        error_code=_error_code(struct.unpack(">I", body)[0]),
    )


def _parse_settings(stream_id: int, flags: int, body: bytes) -> Frame:
    if len(body) % 6:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR,
            f"SETTINGS payload of {len(body)} not a multiple of 6",
        )
    if flags & FLAG_ACK and body:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR, "SETTINGS ACK with payload"
        )
    pairs = tuple(
        struct.unpack(">HI", body[i : i + 6])
        for i in range(0, len(body), 6)
    )
    return SettingsFrame(stream_id=stream_id, flags=flags, settings=pairs)


def _parse_push_promise(stream_id: int, flags: int, body: bytes) -> Frame:
    block = _strip_padding(flags, body, "PUSH_PROMISE")
    if len(block) < 4:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR, "PUSH_PROMISE too short"
        )
    return PushPromiseFrame(
        stream_id=stream_id,
        flags=flags & ~FLAG_PADDED,
        promised_stream_id=struct.unpack(">I", block[0:4])[0] & 0x7FFFFFFF,
        header_block=block[4:],
    )


def _parse_ping(stream_id: int, flags: int, body: bytes) -> Frame:
    return PingFrame(stream_id=stream_id, flags=flags, opaque=body)


def _parse_goaway(stream_id: int, flags: int, body: bytes) -> Frame:
    if len(body) < 8:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR, "GOAWAY too short"
        )
    last, code = struct.unpack(">II", body[0:8])
    return GoAwayFrame(
        stream_id=stream_id,
        last_stream_id=last & 0x7FFFFFFF,
        error_code=_error_code(code),
        debug_data=body[8:],
    )


def _parse_window_update(stream_id: int, flags: int, body: bytes) -> Frame:
    if len(body) != 4:
        raise H2ConnectionError(
            ErrorCode.FRAME_SIZE_ERROR,
            f"WINDOW_UPDATE payload must be 4 bytes, got {len(body)}",
        )
    return WindowUpdateFrame(
        stream_id=stream_id,
        increment=struct.unpack(">I", body)[0] & 0x7FFFFFFF,
    )


def _parse_continuation(stream_id: int, flags: int, body: bytes) -> Frame:
    return ContinuationFrame(stream_id=stream_id, flags=flags,
                             header_block=body)


def _parse_certificate(stream_id: int, flags: int, body: bytes) -> Frame:
    if stream_id != 0 or not body:
        return UnknownFrame(stream_id=stream_id, flags=flags,
                            raw_type=TYPE_CERTIFICATE, raw_payload=body)
    return CertificateFrame(
        stream_id=0, flags=flags, cert_id=body[0], fragment=body[1:],
    )


def _parse_origin_entry(stream_id: int, flags: int, body: bytes) -> Frame:
    return _parse_origin(stream_id, flags, body)


_FRAME_PARSERS = {
    TYPE_DATA: _parse_data,
    TYPE_HEADERS: _parse_headers,
    TYPE_PRIORITY: _parse_priority,
    TYPE_RST_STREAM: _parse_rst_stream,
    TYPE_SETTINGS: _parse_settings,
    TYPE_PUSH_PROMISE: _parse_push_promise,
    TYPE_PING: _parse_ping,
    TYPE_GOAWAY: _parse_goaway,
    TYPE_WINDOW_UPDATE: _parse_window_update,
    TYPE_CONTINUATION: _parse_continuation,
    TYPE_ORIGIN: _parse_origin_entry,
    TYPE_CERTIFICATE: _parse_certificate,
}


def _parse_body(frame_type: int, stream_id: int, flags: int,
                body: bytes) -> Frame:
    parser = _FRAME_PARSERS.get(frame_type)
    if parser is None:
        return UnknownFrame(stream_id=stream_id, flags=flags,
                            raw_type=frame_type, raw_payload=body)
    return parser(stream_id, flags, body)


def parse_frame(buffer: bytes) -> Tuple[Optional[Frame], bytes]:
    """Parse one frame off the front of ``buffer``.

    Returns ``(frame, remaining)``; ``(None, buffer)`` when the buffer
    does not yet hold a complete frame.
    """
    if len(buffer) < FRAME_HEADER_LEN:
        return None, buffer
    word, flags, stream_id = _HEADER_STRUCT.unpack_from(buffer, 0)
    length = word >> 8
    if len(buffer) < FRAME_HEADER_LEN + length:
        return None, buffer
    body = bytes(buffer[FRAME_HEADER_LEN : FRAME_HEADER_LEN + length])
    frame = _parse_body(word & 0xFF, stream_id & 0x7FFFFFFF, flags, body)
    return frame, buffer[FRAME_HEADER_LEN + length :]


def _parse_origin(stream_id: int, flags: int, body: bytes) -> Frame:
    """Parse an ORIGIN payload; malformed entries invalidate the frame.

    RFC 8336 §2.1: an ORIGIN frame on a non-zero stream, or with a
    malformed payload, MUST be ignored -- we surface those cases as
    :class:`UnknownFrame` so the connection treats them as no-ops.
    """
    if stream_id != 0:
        return UnknownFrame(stream_id=stream_id, flags=flags,
                            raw_type=TYPE_ORIGIN, raw_payload=body)
    origins: List[str] = []
    offset = 0
    while offset < len(body):
        if offset + 2 > len(body):
            return UnknownFrame(stream_id=stream_id, flags=flags,
                                raw_type=TYPE_ORIGIN, raw_payload=body)
        length = struct.unpack(">H", body[offset : offset + 2])[0]
        offset += 2
        if offset + length > len(body):
            return UnknownFrame(stream_id=stream_id, flags=flags,
                                raw_type=TYPE_ORIGIN, raw_payload=body)
        try:
            origins.append(body[offset : offset + length].decode("ascii"))
        except UnicodeDecodeError:
            return UnknownFrame(stream_id=stream_id, flags=flags,
                                raw_type=TYPE_ORIGIN, raw_payload=body)
        offset += length
    return OriginFrame(stream_id=0, flags=flags, origins=tuple(origins))


def parse_frames(buffer: bytes) -> Tuple[List[Frame], bytes]:
    """Parse as many complete frames as the buffer holds.

    The buffer is walked with a ``memoryview`` and an offset, so a burst
    of N frames costs one tail copy instead of N shrinking-buffer
    copies.
    """
    frames: List[Frame] = []
    view = memoryview(buffer)
    total = len(view)
    offset = 0
    while total - offset >= FRAME_HEADER_LEN:
        word, flags, stream_id = _HEADER_STRUCT.unpack_from(view, offset)
        length = word >> 8
        end = offset + FRAME_HEADER_LEN + length
        if end > total:
            break
        body = bytes(view[offset + FRAME_HEADER_LEN : end])
        frames.append(
            _parse_body(word & 0xFF, stream_id & 0x7FFFFFFF, flags, body)
        )
        offset = end
    if offset == 0:
        return frames, buffer
    return frames, bytes(view[offset:])


def consume_frames(buffer: bytearray) -> List[Frame]:
    """Parse complete frames out of a persistent receive buffer.

    Consumed bytes are deleted from ``buffer`` in place -- the zero-copy
    companion to :func:`parse_frames` for connection receive paths that
    keep one reusable ``bytearray`` per connection.
    """
    frames: List[Frame] = []
    offset = 0
    try:
        with memoryview(buffer) as view:
            total = len(view)
            while total - offset >= FRAME_HEADER_LEN:
                word, flags, stream_id = _HEADER_STRUCT.unpack_from(
                    view, offset
                )
                length = word >> 8
                end = offset + FRAME_HEADER_LEN + length
                if end > total:
                    break
                body = bytes(view[offset + FRAME_HEADER_LEN : end])
                frames.append(
                    _parse_body(word & 0xFF, stream_id & 0x7FFFFFFF,
                                flags, body)
                )
                offset = end
    finally:
        if offset:
            del buffer[:offset]
    return frames


def _error_code(value: int) -> ErrorCode:
    try:
        return ErrorCode(value)
    except ValueError:
        # Unknown error codes are treated as INTERNAL_ERROR (RFC 7540 §7).
        return ErrorCode.INTERNAL_ERROR
