"""``repro deploy`` -- the §5 deployment experiment (Figures 6/7b,
passive pipeline)."""

from __future__ import annotations

from repro.analysis import format_pct, render_table
from repro.cli.args import add_dataset_options


def cmd_deploy(args) -> int:
    from repro.dataset.world import build_world
    from repro.deployment import (
        ActiveMeasurement,
        DeploymentExperiment,
        PassivePipeline,
    )
    from repro.deployment.active import FIREFOX_91_UA
    from repro.deployment.experiment import Group, deployment_world_config

    world = build_world(
        deployment_world_config(site_count=args.sites, seed=args.seed)
    )
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    print(f"sample: {len(experiment.sample)} sites; certificates "
          "reissued with byte-equal SAN additions")

    if args.phase == "ip":
        experiment.deploy_ip_coalescing()
        active = ActiveMeasurement(experiment, origin_frames=False,
                                   user_agent=FIREFOX_91_UA)
    else:
        experiment.enable_origin_frames()
        active = ActiveMeasurement(experiment, origin_frames=True)
    pipeline = PassivePipeline(experiment, sampling_rate=1.0)
    pipeline.attach()
    result = active.run()
    pipeline.detach()

    print()
    print(render_table(
        f"Figure 7 -- new TLS connections to {experiment.third_party} "
        f"({args.phase} phase)",
        ["#New conns", "Experiment", "Control"],
        [(count,
          format_pct(result.fraction_with(Group.EXPERIMENT, count)),
          format_pct(result.fraction_with(Group.CONTROL, count)))
         for count in range(5)],
    ))
    print(f"\npassive reduction in new third-party TLS connections: "
          f"{format_pct(pipeline.tls_connection_reduction())}")
    return 0


def register(sub) -> None:
    deploy = sub.add_parser("deploy", help="run the §5 deployment")
    add_dataset_options(deploy)
    deploy.add_argument("--phase", choices=("ip", "origin"),
                        default="origin")
    deploy.set_defaults(func=cmd_deploy)
