"""``repro chaos`` -- fault-injected crawl with blast-radius report.

Arms a declarative ``[[fault]]`` schedule (:mod:`repro.chaos.schedule`)
against the crawl pipeline and reports, per fault, how much was riding
every torn-down connection.  ``--compare-policies`` runs the same
schedule under each coalescing policy -- the robustness cost of the
paper's savings: coalescing policies open fewer connections, but each
lost connection takes more hostnames down with it.
"""

from __future__ import annotations

from repro.cli.args import (
    POLICIES,
    _nonnegative_int,
    _parse_alpn,
    _positive_int,
    add_crawl_pipeline_options,
    add_dataset_options,
)
from repro.cli.invoke import chaos_pipeline
from repro.runtime.console import diag


def _retry_policy(args):
    from repro.browser.retry import RetryPolicy

    return RetryPolicy(
        max_retries=0 if args.no_retry else args.retries,
        backoff_base_ms=args.backoff,
        backoff_multiplier=args.backoff_multiplier,
        jitter_ms=args.jitter,
        retry_connection_loss=not args.no_retry,
        budget_ms=args.budget,
    )


def _load_schedule(path):
    from repro.chaos import ChaosError, load_fault_schedule

    try:
        return load_fault_schedule(path)
    except ChaosError as error:
        diag(f"chaos: {error}")
        raise SystemExit(2)


def _fault_table(report) -> str:
    header = (f"{'fault':20s} {'kind':18s} {'events':>6s} "
              f"{'lost':>5s} {'coal':>5s} {'hosts':>6s} "
              f"{'reqs':>6s} {'users':>5s} {'blast':>6s}")
    lines = [header, "-" * len(header)]
    for tally in report.tallies:
        lines.append(
            f"{tally.name:20s} {tally.kind:18s} {tally.events:6d} "
            f"{tally.connections_lost:5d} {tally.coalesced_lost:5d} "
            f"{tally.hostnames_affected:6d} "
            f"{tally.requests_affected:6d} {tally.users_affected:5d} "
            f"{tally.mean_blast_radius:6.3f}"
        )
    return "\n".join(lines)


def _render(args, outcome) -> None:
    result = outcome.result
    report = outcome.extras["report"]
    print(f"chaos: crawled {result.attempted} sites with the "
          f"{args.policy} policy under {report.schedule_source}; "
          f"{result.success_count} succeeded")
    if report.tallies:
        print()
        print(_fault_table(report))
    print()
    print(f"totals: {report.connections_lost} connections lost "
          f"({report.coalesced_lost} coalesced, "
          f"{report.immature_lost} immature), "
          f"{report.hostnames_affected} hostnames affected, "
          f"mean blast radius {report.mean_blast_radius:.3f}; "
          f"{report.requests_retried} requests retried, "
          f"{report.requests_exhausted} exhausted retries")


def _compare(args, schedule, retry_policy) -> int:
    from repro.chaos import COMPARE_POLICIES, compare_policies
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(
        policy=args.policy, speculative_rate=0.10,
        alpn=args.alpn, dns_latency_ms=args.dns_latency,
    )
    rows = compare_policies(
        config, params, schedule, retry_policy,
        policies=COMPARE_POLICIES,
        shard_count=args.shards or None, jobs=args.jobs,
    )
    print(f"chaos: {len(rows)} policies under "
          f"{schedule.source} over {args.sites} sites")
    print()
    header = (f"{'policy':15s} {'conns':>6s} {'lost':>5s} "
              f"{'coal':>5s} {'hosts':>6s} {'blast':>6s} "
              f"{'retried':>8s} {'exhaust':>8s} {'pages':>8s}")
    print(header)
    print("-" * len(header))
    for policy, result, report in rows:
        print(f"{policy:15s} {report.connections_opened:6d} "
              f"{report.connections_lost:5d} "
              f"{report.coalesced_lost:5d} "
              f"{report.hostnames_affected:6d} "
              f"{report.mean_blast_radius:6.3f} "
              f"{report.requests_retried:8d} "
              f"{report.requests_exhausted:8d} "
              f"{result.success_count:4d}/{result.attempted:3d}")
    return 0


def cmd_chaos(args) -> int:
    schedule = _load_schedule(args.schedule)
    retry_policy = _retry_policy(args)
    if args.compare_policies:
        return _compare(args, schedule, retry_policy)
    chaos_pipeline(
        args, schedule, retry_policy,
        render=lambda outcome: _render(args, outcome),
    ).run()
    return 0


def register(sub) -> None:
    chaos = sub.add_parser(
        "chaos",
        help="crawl under a fault schedule, report blast radii",
    )
    add_dataset_options(chaos)
    add_crawl_pipeline_options(chaos)
    chaos.add_argument("--schedule", required=True, metavar="FILE",
                       help="[[fault]] schedule file (TOML subset)")
    chaos.add_argument("--policy", choices=sorted(POLICIES),
                       default="chromium")
    chaos.add_argument("--out", metavar="OUT", default=None,
                       help="write the blast-radius report to OUT "
                            "(canonical JSONL, byte-identical "
                            "across --jobs)")
    chaos.add_argument("--compare-policies", action="store_true",
                       help="run the schedule under every coalescing "
                            "policy and print the robustness-vs-"
                            "savings table")
    chaos.add_argument("--retries", type=_nonnegative_int, default=2,
                       help="retries per request per failure class "
                            "(default 2)")
    chaos.add_argument("--backoff", type=float, default=120.0,
                       metavar="MS",
                       help="base backoff before the first retry "
                            "(default 120)")
    chaos.add_argument("--backoff-multiplier", type=float, default=2.0,
                       dest="backoff_multiplier", metavar="X",
                       help="backoff growth factor (default 2.0; "
                            "1.0 = legacy linear)")
    chaos.add_argument("--jitter", type=float, default=40.0,
                       metavar="MS",
                       help="seeded uniform jitter on each backoff "
                            "(default 40)")
    chaos.add_argument("--budget", type=float, default=0.0,
                       metavar="MS",
                       help="per-request retry budget in simulated "
                            "ms (default 0 = unlimited)")
    chaos.add_argument("--no-retry", action="store_true",
                       help="disable retries entirely (faults "
                            "surface as failed requests)")
    chaos.set_defaults(func=cmd_chaos)
