"""``repro explain`` / ``repro audit-diff`` -- reason-coded decision
analysis: annotated waterfalls, miss-reason breakdowns, and
decision-by-decision comparison of two audit exports."""

from __future__ import annotations

from repro.analysis import render_table
from repro.cli.args import (
    BREAKDOWN_METRICS,
    POLICIES,
    _nonnegative_int,
    _parse_breakdown,
    add_crawl_pipeline_options,
    add_dataset_options,
)
from repro.cli.invoke import crawl_pipeline
from repro.runtime.console import diag as _diag


def cmd_explain(args) -> int:
    from repro.audit.explain import render_explanation, render_taxonomy

    if args.taxonomy:
        print(render_taxonomy())
        return 0

    def render(outcome) -> None:
        result, trace = outcome.result, outcome.trace
        _diag(f"explain: {len(trace.audit)} audit events over "
              f"{result.attempted} pages")
        print(render_explanation(
            result.archives,
            trace.audit,
            pages=args.pages,
            metrics=args.breakdown,
        ))
        from repro.audit.reasons import ReasonCode

        protocol_codes = {
            ReasonCode.ALT_SVC_UPGRADE, ReasonCode.HTTPS_RR_H3,
            ReasonCode.QUIC_HANDSHAKE_1RTT, ReasonCode.ZERO_RTT_RESUMED,
            ReasonCode.CROSS_HOST_TICKET, ReasonCode.TLS_ALPN_FALLBACK,
        }
        protocol_events = [
            event for event in trace.audit
            if event.kind in ("quic", "h3") or event.code in protocol_codes
        ]
        if protocol_events:
            from collections import Counter

            counts = Counter(event.code for event in protocol_events)
            print()
            print(render_table(
                "Protocol events (h3 discovery and QUIC resumption)",
                ["Reason", "#Events"],
                [(code.value, count)
                 for code, count in sorted(counts.items(),
                                           key=lambda kv: -kv[1])],
            ))

    crawl_pipeline(args, args.policy, force_audit=True,
                   render=render).run()
    return 0


def cmd_audit_diff(args) -> int:
    from repro.audit.diff import (
        diff_decisions,
        load_audit_jsonl,
        render_diff,
    )
    from repro.audit.reasons import UnknownReasonCode

    try:
        events_a = load_audit_jsonl(args.a)
        events_b = load_audit_jsonl(args.b)
    except (UnknownReasonCode, OSError, KeyError, TypeError,
            ValueError) as error:
        # Unreadable path, truncated/garbled JSONL, or an event doc
        # missing required fields: a clear diagnostic and exit 2, not
        # a traceback.
        _diag(f"audit-diff: {error!r}"
              if isinstance(error, (KeyError, TypeError))
              else f"audit-diff: {error}")
        return 2
    diff = diff_decisions(events_a, events_b)
    _diag(f"audit-diff: {len(events_a)} events in {args.a}, "
          f"{len(events_b)} in {args.b}")
    print(render_diff(diff, label_a=str(args.a), label_b=str(args.b)))
    return 0 if diff.clean else 1


def register(sub) -> None:
    explain = sub.add_parser(
        "explain",
        help="annotated waterfalls + miss-reason gap breakdown",
    )
    add_dataset_options(explain)
    add_crawl_pipeline_options(explain)
    explain.add_argument("--policy", choices=sorted(POLICIES),
                         default="chromium")
    explain.add_argument("--pages", type=_nonnegative_int, default=None,
                         help="render only the first N per-page "
                              "waterfalls (0 = breakdown tables only; "
                              "default: all pages)")
    explain.add_argument("--breakdown", type=_parse_breakdown,
                         default=list(BREAKDOWN_METRICS),
                         help="comma-separated breakdown metrics "
                              f"({','.join(BREAKDOWN_METRICS)} or "
                              "'all'; default all)")
    explain.add_argument("--taxonomy", action="store_true",
                         help="print the reason-code taxonomy table "
                              "and exit (no crawl)")
    explain.set_defaults(func=cmd_explain)

    audit_diff = sub.add_parser(
        "audit-diff",
        help="compare two audit JSONL exports decision-by-decision",
    )
    audit_diff.add_argument("a", help="baseline audit JSONL")
    audit_diff.add_argument("b", help="comparison audit JSONL")
    audit_diff.set_defaults(func=cmd_audit_diff)
