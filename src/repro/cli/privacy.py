"""``repro privacy`` -- the §6.2 plaintext-exposure comparison."""

from __future__ import annotations

from repro.analysis import format_pct, render_table
from repro.cli.args import (
    add_crawl_pipeline_options,
    add_dataset_options,
)
from repro.cli.invoke import crawl_pipeline


def cmd_privacy(args) -> int:
    from repro.core import compare_privacy

    def render(outcome) -> None:
        comparison = compare_privacy(outcome.result.successes)
        medians = comparison.median_signals()
        print(render_table(
            "Privacy -- plaintext signals per page (paper §6.2)",
            ["Client", "median DNS+SNI signals"],
            [("measured (today)", f"{medians['measured']:.0f}"),
             ("ideal ORIGIN client", f"{medians['ideal_origin']:.0f}")],
        ))
        print(f"\nsignal reduction "
              f"{format_pct(comparison.signal_reduction())}; median "
              f"hostnames hidden per page "
              f"{comparison.median_hostnames_hidden():.0f}")

    crawl_pipeline(args, "chromium", render=render).run()
    return 0


def register(sub) -> None:
    privacy = sub.add_parser("privacy", help="§6.2 exposure analysis")
    add_dataset_options(privacy)
    add_crawl_pipeline_options(privacy)
    privacy.set_defaults(func=cmd_privacy)
