"""``repro crawl`` -- crawl a synthetic web, print Tables 1-7."""

from __future__ import annotations

from repro.cli.args import (
    POLICIES,
    _parse_tables,
    add_crawl_pipeline_options,
    add_dataset_options,
)
from repro.cli.invoke import crawl_pipeline
from repro.dataset.characterize import (
    CRAWL_TABLES,
    DEFAULT_TABLES,
    render_crawl_table,
)


def cmd_crawl(args) -> int:
    def render(outcome) -> None:
        result = outcome.result
        print(f"crawled {result.attempted} sites with the "
              f"{args.policy} policy; {result.success_count} "
              "succeeded")
        for token in args.tables:
            print()
            print(render_crawl_table(token, result))

    crawl_pipeline(args, args.policy, render=render).run()
    return 0


def register(sub) -> None:
    crawl = sub.add_parser("crawl", help="crawl and characterize")
    add_dataset_options(crawl)
    add_crawl_pipeline_options(crawl)
    crawl.add_argument("--policy", choices=sorted(POLICIES),
                       default="chromium")
    crawl.add_argument("--tables", type=_parse_tables,
                       default=DEFAULT_TABLES,
                       help="comma-separated table numbers to render "
                            f"(1-{len(CRAWL_TABLES)} or 'all'; "
                            f"default {DEFAULT_TABLES})")
    crawl.set_defaults(func=cmd_crawl)
