"""``repro traffic`` -- population-scale traffic simulation with
edge load accounting."""

from __future__ import annotations

from repro.analysis import format_pct, render_table
from repro.cli.args import (
    _nonnegative_int,
    _positive_int,
    add_ledger_options,
)
from repro.cli.invoke import traffic_pipeline
from repro.runtime import InstrumentationOptions
from repro.runtime.console import diag as _diag


def print_traffic_summary(aggregate) -> None:
    totals = aggregate.totals
    completed = aggregate.completed
    plt = (
        sum(t.plt_total_ms for t in aggregate.cohorts.values())
        / completed if completed else 0.0
    )
    print(
        f"simulated {aggregate.users} users, {aggregate.visits} visits "
        f"({completed} completed, {aggregate.failed} failed) over "
        f"{aggregate.duration_ms / 1000:.0f}s"
    )
    print(
        f"edge load: {totals.connections} connections "
        f"(peak {totals.peak_concurrent} concurrent), "
        f"{totals.handshakes} handshakes "
        f"({format_pct(totals.resumption_rate)} resumed), "
        f"{totals.requests} requests "
        f"({format_pct(totals.coalesced_share)} coalesced), "
        f"{totals.goaways} overload GOAWAYs, "
        f"{aggregate.retries} client retries"
    )
    print(f"client: {aggregate.dns_queries} DNS queries, "
          f"mean PLT {plt:.0f} ms")


def print_traffic_tables(aggregate) -> None:
    print()
    print(render_table(
        "Per-cohort outcomes",
        ["Cohort", "Users", "Visits", "Revisits", "OK", "Failed",
         "Cached", "Mean PLT ms"],
        [(name, tally.users, tally.visits, tally.revisits,
          tally.completed, tally.failed, tally.cached_responses,
          f"{tally.mean_plt_ms:.0f}")
         for name, tally in sorted(aggregate.cohorts.items())],
    ))
    print()
    print(render_table(
        "Edge load by group",
        ["Edge", "Conns", "Peak", "Handshakes", "Resumed", "#Req",
         "Coalesced", "GOAWAYs"],
        [(name, c.connections, c.peak_concurrent, c.handshakes,
          format_pct(c.resumption_rate), c.requests,
          format_pct(c.coalesced_share), c.goaways)
         for name, c in sorted(aggregate.edges.items())
         if c.connections or c.requests],
    ))
    series = aggregate.coalesced_share_series()
    if series:
        print()
        print(render_table(
            "Coalesced-request share over time (Figure 8-style)",
            ["t (s)", "Coalesced", "#Req"],
            [(f"{start / 1000:.0f}", format_pct(share), requests)
             for start, share, requests in series],
        ))


def cmd_traffic(args) -> int:
    from repro.traffic import (
        ScenarioConfig,
        run_what_if,
        scenario_for_policy,
        what_if_rows,
    )

    base = ScenarioConfig(
        users=args.users,
        site_count=args.sites,
        seed=args.seed,
        duration_ms=args.duration * 1000.0,
        mean_visits_per_user=args.mean_visits,
        bucket_ms=args.bucket * 1000.0,
        edge_capacity=args.edge_capacity,
        goaway_retry_limit=args.retry_limit,
    )
    # Validate the SLO gate file up front: a malformed gate must
    # abort before any simulation, including the what-if sweep.
    options = InstrumentationOptions.from_args(args)
    options.load_rules()

    if args.what_if:
        if args.trace or args.metrics or options.ledger_dir:
            _diag("traffic: --trace/--metrics/--ledger are ignored "
                  "with --what-if (the sweep keeps no merged trace)")
        _diag(f"traffic: what-if sweep over {args.users} users, "
              f"{args.sites} sites")
        results = run_what_if(
            base, shard_count=args.shards or None, jobs=args.jobs,
            progress=lambda policy, done, total:
                _diag(f"{policy}: shard {done}/{total}"),
        )
        headers, rows = what_if_rows(results)
        print(render_table(
            "What-if: edge load under coalescing policies",
            headers, rows,
        ))
        return 0

    scenario = scenario_for_policy(base, args.scenario)
    _diag(f"traffic: {args.users} users over {args.sites} sites "
          f"({args.scenario} scenario)")

    def render(outcome) -> None:
        print_traffic_summary(outcome.result)
        print_traffic_tables(outcome.result)

    traffic_pipeline(args, scenario, render=render).run()
    return 0


def register(sub) -> None:
    traffic = sub.add_parser(
        "traffic",
        help="population-scale traffic simulation with edge load "
             "accounting",
    )
    traffic.add_argument("--users", type=_positive_int, default=1000,
                         help="population size (default 1000)")
    traffic.add_argument("--sites", type=_positive_int, default=40,
                         help="sites in the simulated web (default 40)")
    traffic.add_argument("--seed", type=int, default=2022)
    traffic.add_argument("--duration", type=float, default=60.0,
                         help="scenario window in simulated seconds "
                              "(default 60)")
    traffic.add_argument("--mean-visits", type=float, default=2.0,
                         help="mean page visits per user; revisits "
                              "arrive with warm caches and TLS "
                              "tickets (default 2.0)")
    traffic.add_argument("--bucket", type=float, default=5.0,
                         help="time-series bucket in seconds "
                              "(default 5)")
    traffic.add_argument("--shards", type=int, default=0,
                         help="user-shard layout (default 0 = one "
                              "shard per ~500 users; part of the "
                              "experiment definition)")
    traffic.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes (default 1; does not "
                              "change results)")
    traffic.add_argument("--scenario", choices=("baseline", "origin",
                                                "ideal-san"),
                         default="baseline",
                         help="cohort mix + deployment switches "
                              "(default baseline)")
    traffic.add_argument("--what-if", action="store_true",
                         help="run baseline, origin, and ideal-san "
                              "over the same population and print the "
                              "comparison table")
    traffic.add_argument("--edge-capacity", type=_positive_int,
                         default=None,
                         help="fleet-wide concurrent-connection limit "
                              "per CDN edge; hitting it refuses "
                              "connections with GOAWAY (default "
                              "unlimited)")
    traffic.add_argument("--retry-limit", type=_nonnegative_int,
                         default=2,
                         help="client re-dials after an overload "
                              "GOAWAY (default 2)")
    traffic.add_argument("--out", metavar="OUT", default=None,
                         help="write the merged aggregate to OUT "
                              "(canonical JSONL, byte-identical "
                              "across --jobs)")
    traffic.add_argument("--audit", metavar="OUT", default=None,
                         help="collect decision auditing and write "
                              "the merged log to OUT (JSONL)")
    traffic.add_argument("--trace", metavar="OUT", default=None,
                         help="collect telemetry spans and write the "
                              "merged trace to OUT: Chrome "
                              "trace_event JSON, or span JSONL when "
                              "OUT ends in .jsonl")
    traffic.add_argument("--metrics", action="store_true",
                         help="print the unified metrics summary "
                              "after the run")
    add_ledger_options(traffic)
    traffic.set_defaults(func=cmd_traffic)
