"""Bridge argparse namespaces onto the run pipeline.

One adapter per workload: lift the parsed flags into the declarative
pipeline parts (workload + instrumentation + backend) so the command
modules only choose a policy and render output.
"""

from __future__ import annotations

from repro.runtime import (
    ChaosWorkload,
    CrawlWorkload,
    ExecutionBackend,
    InstrumentationOptions,
    RunPipeline,
    TrafficWorkload,
)


def crawl_pipeline(args, policy_name: str, force_audit: bool = False,
                   render=None) -> RunPipeline:
    """The shared crawl pipeline behind ``crawl``/``model``/
    ``privacy``/``explain``."""
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(
        policy=policy_name, speculative_rate=0.10,
        alpn=getattr(args, "alpn", "h2"),
        dns_latency_ms=getattr(args, "dns_latency", 48.0),
    )
    workload = CrawlWorkload(
        config, params, shards=args.shards,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        refresh=args.refresh, command=args.command,
    )
    return RunPipeline(
        workload,
        instrumentation=InstrumentationOptions.from_args(
            args, force_audit=force_audit),
        backend=ExecutionBackend(jobs=args.jobs),
        render=render,
    )


def chaos_pipeline(args, schedule, retry_policy,
                   render=None) -> RunPipeline:
    """The fault-injected crawl behind ``chaos``.

    The dataset/params construction mirrors :func:`crawl_pipeline`
    exactly -- with an empty schedule the outputs must come out
    byte-identical to a plain ``repro crawl`` of the same flags.
    """
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(
        policy=args.policy, speculative_rate=0.10,
        alpn=getattr(args, "alpn", "h2"),
        dns_latency_ms=getattr(args, "dns_latency", 48.0),
    )
    workload = ChaosWorkload(
        config, params, schedule, retry_policy,
        shards=args.shards, report_out=args.out,
    )
    return RunPipeline(
        workload,
        instrumentation=InstrumentationOptions.from_args(args),
        backend=ExecutionBackend(jobs=args.jobs),
        render=render,
    )


def traffic_pipeline(args, scenario, render=None) -> RunPipeline:
    workload = TrafficWorkload(
        scenario, shards=args.shards,
        scenario_name=args.scenario, aggregate_out=args.out,
    )
    return RunPipeline(
        workload,
        instrumentation=InstrumentationOptions.from_args(args),
        backend=ExecutionBackend(jobs=args.jobs),
        render=render,
    )
