"""``repro model`` -- the §4 best-case model (Figure 3, headline,
certificate plan)."""

from __future__ import annotations

from repro.analysis import format_pct, render_cdf, render_table
from repro.cli.args import (
    add_crawl_pipeline_options,
    add_dataset_options,
)
from repro.cli.invoke import crawl_pipeline


def print_protocol_rows(result) -> None:
    """Per-protocol request/handshake summary for multi-ALPN crawls."""
    by_protocol = {}
    for archive in result.successes:
        for entry in archive.entries:
            row = by_protocol.setdefault(
                entry.protocol, {"requests": 0, "new_connections": 0,
                                 "handshake_ms": 0.0}
            )
            row["requests"] += 1
            if entry.timings.connect >= 0 or entry.timings.ssl >= 0:
                row["new_connections"] += 1
                row["handshake_ms"] += (
                    max(entry.timings.connect, 0.0)
                    + max(entry.timings.ssl, 0.0)
                )
    total = sum(row["requests"] for row in by_protocol.values()) or 1
    print(render_table(
        "Per-protocol breakdown",
        ["Protocol", "#Req", "%", "#New conns", "Handshake ms (total)"],
        [(protocol, row["requests"],
          format_pct(row["requests"] / total),
          row["new_connections"], f"{row['handshake_ms']:.0f}")
         for protocol, row in sorted(by_protocol.items(),
                                     key=lambda kv: -kv[1]["requests"])],
    ))


def cmd_model(args) -> int:
    from repro.core import figure3, headline_reductions
    from repro.dataset.shard import plan_certificates_sharded

    def render(outcome) -> None:
        result = outcome.result
        data = figure3(result.archives)
        print(render_cdf(
            "Figure 3 -- per-page DNS/TLS counts",
            [("measured DNS", data.measured_dns),
             ("measured TLS", data.measured_tls),
             ("ideal IP", data.ideal_ip),
             ("ideal ORIGIN", data.ideal_origin)],
        ))
        if "h3" in getattr(args, "alpn", "h2"):
            print()
            print_protocol_rows(result)
        headline = headline_reductions(result.archives)
        print(f"\nheadline: validation reduction "
              f"{format_pct(headline['validation_reduction'])}, "
              f"DNS reduction {format_pct(headline['dns_reduction'])} "
              "(paper: 68.75% / 64.28%)")
        plan = plan_certificates_sharded(outcome.config,
                                         outcome.shard_count)
        print(f"certificates needing no change: "
              f"{format_pct(plan.unchanged_fraction)} (paper: 62.41%); "
              f"<=10 additions covers "
              f"{format_pct(plan.fraction_with_changes_at_most(10))}")

    crawl_pipeline(args, "chromium", render=render).run()
    return 0


def register(sub) -> None:
    model = sub.add_parser("model", help="run the §4 model")
    add_dataset_options(model)
    add_crawl_pipeline_options(model)
    model.set_defaults(func=cmd_model)
