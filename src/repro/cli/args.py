"""Shared argparse plumbing: validators and option groups.

Every value-level validator lives here so ``repro run`` scenarios and
hand-typed command lines are checked by exactly the same code; the
option-group helpers (``add_dataset_options`` & co.) keep the crawl
pipeline's flags identical across the commands that share it.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.browser.policy import POLICY_FACTORIES
from repro.dataset.characterize import CRAWL_TABLES, DEFAULT_TABLES

#: Kept as the CLI-facing name->factory registry (the canonical copy
#: lives in :mod:`repro.browser.policy` so crawl workers can share it).
POLICIES = POLICY_FACTORIES

#: ALPN protocols the crawl pipeline can offer.
SUPPORTED_ALPN = ("h2", "h3")

#: ``--breakdown`` tokens, in render order (mirrors ``--tables``).
BREAKDOWN_METRICS = ("dns", "tls", "validations")


def _parse_tables(spec: str) -> List[str]:
    if spec.strip().lower() == "all":
        return list(CRAWL_TABLES)
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens if token not in CRAWL_TABLES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown table(s) {','.join(unknown)}; choose from "
            f"{','.join(CRAWL_TABLES)} or 'all'"
        )
    # Render in canonical order, deduplicated.
    return [token for token in CRAWL_TABLES if token in tokens]


def _parse_alpn(spec: str) -> str:
    """Normalize ``--alpn`` (e.g. ``"h2,h3"``); h2 is mandatory."""
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens if token not in SUPPORTED_ALPN]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown protocol(s) {','.join(unknown)}; choose from "
            f"{','.join(SUPPORTED_ALPN)}"
        )
    if "h2" not in tokens:
        raise argparse.ArgumentTypeError(
            "the offer must include h2 (h3 endpoints are discovered "
            "over h2 via Alt-Svc and HTTPS records)"
        )
    # Canonical order so equivalent spellings share a cache entry.
    return ",".join(p for p in SUPPORTED_ALPN if p in tokens)


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _nonnegative_int(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {count}")
    return count


def _parse_breakdown(spec: str) -> List[str]:
    if spec.strip().lower() == "all":
        return list(BREAKDOWN_METRICS)
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens
               if token not in BREAKDOWN_METRICS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown breakdown metric(s) {','.join(unknown)}; choose "
            f"from {','.join(BREAKDOWN_METRICS)} or 'all'"
        )
    return [token for token in BREAKDOWN_METRICS if token in tokens]


# -- shared option groups -----------------------------------------------------

def add_dataset_options(p) -> None:
    """``--sites/--seed``: the synthetic-web definition."""
    p.add_argument("--sites", type=int, default=150,
                   help="synthetic sites to generate (default 150)")
    p.add_argument("--seed", type=int, default=2022)


def add_ledger_options(p) -> None:
    p.add_argument("--ledger", metavar="DIR", default=None,
                   help="append this run's record (phase latency "
                        "histograms, headline metrics, SLO "
                        "verdicts) to the ledger directory DIR; "
                        "forces the traced pipeline")
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="evaluate the [[slo]] gates in FILE and "
                        "store their verdicts in the run record")


def add_crawl_pipeline_options(p) -> None:
    """Flags every crawl-pipeline command shares (shards, jobs,
    cache, instrumentation)."""
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="crawl worker processes (default 1; does "
                        "not change results)")
    p.add_argument("--shards", type=int, default=0,
                   help="shard layout (default 0 = one shard per "
                        "~100 sites; part of the experiment "
                        "definition)")
    p.add_argument("--cache-dir", default=None,
                   help="crawl cache directory (default "
                        "$REPRO_CRAWL_CACHE or "
                        "~/.cache/repro/crawls)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the crawl cache")
    p.add_argument("--refresh", action="store_true",
                   help="ignore any cached crawl, re-crawl, and "
                        "overwrite the entry")
    p.add_argument("--trace", metavar="OUT", default=None,
                   help="crawl with span tracing and write the "
                        "trace to OUT: Chrome trace_event JSON "
                        "(Perfetto-loadable), or span JSONL when "
                        "OUT ends in .jsonl; bypasses cache reads")
    p.add_argument("--metrics", action="store_true",
                   help="crawl with telemetry and print the "
                        "unified metrics summary; bypasses cache "
                        "reads")
    p.add_argument("--audit", metavar="OUT", default=None,
                   help="crawl with decision auditing and write "
                        "the audit log to OUT (canonical JSONL); "
                        "bypasses cache reads")
    p.add_argument("--alpn", type=_parse_alpn, default="h2",
                   help="ALPN protocols the browser offers "
                        "(default h2; 'h2,h3' also discovers and "
                        "upgrades to QUIC endpoints)")
    p.add_argument("--dns-latency", type=float, default=48.0,
                   dest="dns_latency", metavar="MS",
                   help="simulated resolver wire RTT in ms "
                        "(default 48; part of the run "
                        "fingerprint)")
    add_ledger_options(p)
