"""``repro profile`` -- profile an in-process crawl and print a
sorted hot-spot table."""

from __future__ import annotations

from repro.analysis import render_table
from repro.cli.args import (
    POLICIES,
    _parse_alpn,
    _positive_int,
    add_dataset_options,
    add_ledger_options,
)
from repro.runtime import (
    CrawlWorkload,
    InstrumentationOptions,
    ProfiledBackend,
    export_trace,
)
from repro.runtime.console import diag as _diag
from repro.runtime.sinks import LedgerSink


def _short_func_name(func: tuple) -> str:
    """``file:line(name)`` with the path shortened to the module-ish
    tail, so the hot-spot table stays readable and stable across
    checkouts."""
    filename, line, name = func
    if filename == "~":
        return name  # C builtins print as plain names
    marker = "/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        filename = "repro/" + filename[index + len(marker):]
    else:
        filename = filename.rsplit("/", 1)[-1]
    return f"{filename}:{line}({name})"


def cmd_profile(args) -> int:
    """The crawl always runs with ``jobs=1``: cProfile only observes
    the calling process, so worker fan-out would hide exactly the
    code this command exists to expose.  Simulated work is
    deterministic, which makes call counts exactly reproducible
    run-to-run (timings naturally vary with the machine).
    """
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams
    from repro.telemetry.validation import validate_crawl_trace

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(policy=args.policy, speculative_rate=0.10,
                         alpn=args.alpn)
    workload = CrawlWorkload(config, params, shards=args.shards,
                             no_cache=True, command="profile")
    _diag(f"profile: crawling {config.site_count} sites over "
          f"{workload.shard_count} shard(s) in-process (jobs=1; "
          "cProfile cannot see worker processes)")

    options = InstrumentationOptions.from_args(args)
    rules = options.load_rules()
    backend = ProfiledBackend()
    outcome = workload.execute_profiled(backend, options)
    result = outcome.result

    stats = backend.stats()
    elapsed = stats.total_tt
    rate = result.attempted / elapsed if elapsed > 0 else 0.0
    print(f"profiled {result.attempted} sites in {elapsed:.2f}s "
          f"({rate:.2f} sites/sec under profiler overhead)")
    print()

    sort_index = 3 if args.sort == "cumulative" else 2
    rows = sorted(
        stats.stats.items(),
        key=lambda item: item[1][sort_index],
        reverse=True,
    )[: args.top]
    print(render_table(
        f"Top {len(rows)} functions by {args.sort} time",
        ["ncalls", "tottime (s)", "cumtime (s)", "function"],
        [(
            str(nc) if cc == nc else f"{nc}/{cc}",
            f"{tt:.3f}",
            f"{ct:.3f}",
            _short_func_name(func),
        ) for func, (cc, nc, tt, ct, _callers) in rows],
    ))

    if args.pstats:
        stats.dump_stats(args.pstats)
        _diag(f"pstats: raw profile -> {args.pstats} "
              "(load with pstats.Stats or snakeviz)")

    if options.want_trace:
        problems = validate_crawl_trace(result, outcome.trace.spans)
        if problems:
            for problem in problems:
                _diag(f"trace: INVALID: {problem}")
            return 1
        _diag(f"trace: {len(outcome.trace.spans)} spans validated "
              f"against {result.attempted} archives")
        export_trace(outcome.trace, args.trace, want_metrics=False)
    if options.ledger_dir:
        LedgerSink(options.ledger_dir, rules, workload)(outcome)
    return 0


def register(sub) -> None:
    profile = sub.add_parser(
        "profile",
        help="profile an in-process crawl and print hot spots",
    )
    add_dataset_options(profile)
    profile.add_argument("--policy", choices=sorted(POLICIES),
                         default="chromium")
    profile.add_argument("--shards", type=int, default=0,
                         help="shard layout (default 0 = one shard per "
                              "~100 sites)")
    profile.add_argument("--alpn", type=_parse_alpn, default="h2",
                         help="ALPN protocols the browser offers")
    profile.add_argument("--sort", choices=("cumulative", "tottime"),
                         default="cumulative",
                         help="hot-spot sort key (default cumulative)")
    profile.add_argument("--top", type=_positive_int, default=25,
                         help="rows in the hot-spot table (default 25)")
    profile.add_argument("--trace", metavar="OUT", default=None,
                         help="also collect telemetry spans, validate "
                              "them against the archives, and write "
                              "OUT (Chrome trace_event JSON, or span "
                              "JSONL when OUT ends in .jsonl)")
    profile.add_argument("--pstats", metavar="OUT", default=None,
                         help="dump the raw cProfile stats to OUT")
    add_ledger_options(profile)
    profile.set_defaults(func=cmd_profile)
