"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``crawl``   -- generate + crawl a synthetic web, print Tables 1-7
* ``model``   -- run the §4 model (Figure 3, headline, cert plan)
* ``deploy``  -- run the §5 deployment (Figures 6/7b, passive pipeline)
* ``privacy`` -- the §6.2 privacy exposure comparison
* ``report``  -- render one run-ledger record as a dashboard
* ``compare`` -- regression verdicts between two ledger records
* ``run``     -- execute a declarative scenario file

``crawl``, ``model``, and ``privacy`` share one crawl pipeline: the
dataset is partitioned into deterministic shards (``--shards``),
crawled by ``--jobs`` worker processes, and the merged archives are
persisted in a content-addressed cache so repeated invocations with
the same configuration skip the crawl entirely (``cache: hit``).

Any crawl-pipeline command (plus ``traffic`` and ``profile``) takes
``--ledger DIR`` to append a canonical run record -- per-phase latency
histograms, headline metrics, SLO verdicts from ``--slo FILE`` -- that
``report`` and ``compare`` consume (see :mod:`repro.obs`).

The command modules in this package only parse arguments and render
output; orchestration (shards, workers, cache, instrumentation,
artifact sinks) lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.cli import (
    cache,
    chaos,
    crawl,
    deploy,
    explain,
    model,
    privacy,
    profile,
    report,
    run,
    traffic,
)
from repro.cli.args import (  # noqa: F401  (public CLI surface)
    BREAKDOWN_METRICS,
    POLICIES,
    SUPPORTED_ALPN,
    _nonnegative_int,
    _parse_alpn,
    _parse_breakdown,
    _parse_tables,
    _positive_int,
)
from repro.dataset.characterize import (  # noqa: F401
    CRAWL_TABLES,
    DEFAULT_TABLES,
)

#: Command modules in help-listing order.
_COMMAND_MODULES = (
    crawl, model, deploy, explain, privacy, traffic, chaos, cache,
    profile, report, run,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Respect the ORIGIN!' (IMC 2022)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    for module in _COMMAND_MODULES:
        module.register(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
