"""``repro cache`` -- inspect or prune the content-addressed crawl
cache."""

from __future__ import annotations

from repro.analysis import render_table
from repro.cli.args import _nonnegative_int
from repro.runtime.console import diag as _diag


def cmd_cache(args) -> int:
    from repro.dataset.cache import CrawlCache

    import time as time_module

    cache = CrawlCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        now = time_module.time()
        print(f"cache: {stats.root}")
        print(f"{stats.count} entries, "
              f"{stats.total_bytes / 1_048_576:.1f} MiB")
        if stats.entries:
            print()
            print(render_table(
                "Entries (newest first)",
                ["Key", "Size (MiB)", "Age (days)"],
                [(entry.key,
                  f"{entry.size_bytes / 1_048_576:.2f}",
                  f"{(now - entry.modified_at) / 86_400:.1f}")
                 for entry in stats.entries],
            ))
        return 0
    # prune
    if args.max_entries is None and args.max_age_days is None:
        _diag("cache: prune needs --max-entries and/or --max-age-days "
              "(use stats to inspect first)")
        return 2
    removed = cache.prune(
        max_entries=args.max_entries, max_age_days=args.max_age_days
    )
    freed = sum(entry.size_bytes for entry in removed)
    print(f"pruned {len(removed)} entries, "
          f"{freed / 1_048_576:.1f} MiB freed")
    for entry in removed:
        _diag(f"removed {entry.path}")
    return 0


def register(sub) -> None:
    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed crawl cache",
    )
    cache_cmd.add_argument("action", choices=("stats", "prune"))
    cache_cmd.add_argument("--cache-dir", default=None,
                           help="cache directory (default "
                                "$REPRO_CRAWL_CACHE or "
                                "~/.cache/repro/crawls)")
    cache_cmd.add_argument("--max-entries", type=_nonnegative_int,
                           default=None,
                           help="prune: keep at most N newest entries")
    cache_cmd.add_argument("--max-age-days", type=float, default=None,
                           help="prune: drop entries older than this")
    cache_cmd.set_defaults(func=cmd_cache)
