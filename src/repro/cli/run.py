"""``repro run`` -- execute a declarative scenario file.

The scenario resolves to a sub-command argv (printed to stderr), so a
scenario run is validated by the same argparse parsers and produces
byte-identical artifacts to the equivalent hand-typed command line.
"""

from __future__ import annotations

from repro.cli.args import _positive_int
from repro.runtime.console import diag as _diag


def cmd_run(args) -> int:
    from repro.runtime.scenario import ScenarioError, load_scenario

    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as error:
        _diag(f"run: {error}")
        return 2
    argv = scenario.argv
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    _diag(f"run: {args.scenario} -> repro {' '.join(argv)}")
    if args.dry_run:
        return 0
    from repro.cli import build_parser

    namespace = build_parser().parse_args(argv)
    return namespace.func(namespace)


def register(sub) -> None:
    run = sub.add_parser(
        "run",
        help="execute a declarative scenario file (TOML subset)",
    )
    run.add_argument("scenario",
                     help="scenario file: a [run] section naming the "
                          "command plus [dataset]/[traffic]/"
                          "[instrumentation]/[sinks]/[render] "
                          "sections of CLI flags")
    run.add_argument("--jobs", type=_positive_int, default=None,
                     help="worker processes (execution knob; "
                          "overrides nothing in the scenario and "
                          "never changes results)")
    run.add_argument("--dry-run", action="store_true",
                     help="print the resolved command line and exit "
                          "without executing")
    run.set_defaults(func=cmd_run)
