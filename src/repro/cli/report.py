"""``repro report`` / ``repro compare`` -- render and diff run-ledger
records."""

from __future__ import annotations

from repro.obs.compare import (
    ABS_FLOOR_MS as COMPARE_ABS_FLOOR_MS,
    REL_FLOOR as COMPARE_REL_FLOOR,
)
from repro.runtime.console import diag as _diag


def cmd_report(args) -> int:
    from repro.obs import ledger as ledger_mod
    from repro.obs.report import render_report, slo_failures

    try:
        path = ledger_mod.resolve_record_path(args.run, args.ledger)
        record = ledger_mod.load_record(path)
    except ledger_mod.LedgerError as error:
        _diag(f"report: {error}")
        return 2
    if args.slo:
        from repro.obs.slo import SloError, evaluate_slos, load_slo

        try:
            rules = load_slo(args.slo)
        except SloError as error:
            _diag(f"report: {error}")
            return 2
        record.slo = evaluate_slos(rules, record.phases,
                                   record.headline)
    print(render_report(record, fmt=args.format), end="")
    failing = slo_failures(record)
    if failing:
        _diag(f"slo: FAIL {', '.join(failing)}")
        if args.check:
            return 1
    return 0


def cmd_compare(args) -> int:
    from repro.obs import ledger as ledger_mod
    from repro.obs.compare import compare_records, render_compare

    try:
        record_a = ledger_mod.load_record(
            ledger_mod.resolve_record_path(args.a, args.ledger)
        )
        record_b = ledger_mod.load_record(
            ledger_mod.resolve_record_path(args.b, args.ledger)
        )
    except ledger_mod.LedgerError as error:
        _diag(f"compare: {error}")
        return 2
    result = compare_records(
        record_a, record_b,
        rel_floor=args.rel_floor, abs_floor_ms=args.abs_floor_ms,
    )
    _diag(f"compare: baseline {record_a.run_id}, "
          f"candidate {record_b.run_id}")
    print(render_compare(result, args.a, args.b,
                         only_changed=args.only_changed), end="")
    return result.exit_code


def register(sub) -> None:
    report = sub.add_parser(
        "report",
        help="render a run-ledger record as a dashboard",
    )
    report.add_argument("run",
                        help="record path, or a run id resolved "
                             "under --ledger")
    report.add_argument("--ledger", metavar="DIR", default=None,
                        help="ledger directory run ids resolve in")
    report.add_argument("--format", choices=("ascii", "markdown"),
                        default="ascii",
                        help="ascii for terminals, markdown for CI "
                             "artifacts (default ascii)")
    report.add_argument("--slo", metavar="FILE", default=None,
                        help="re-evaluate the gates in FILE against "
                             "the record instead of showing the "
                             "stored verdicts")
    report.add_argument("--check", action="store_true",
                        help="exit 1 when any SLO gate fails")
    report.set_defaults(func=cmd_report)

    compare = sub.add_parser(
        "compare",
        help="per-metric regression verdicts between two ledger "
             "records (exit 0 clean / 1 regressed / 2 incomparable)",
    )
    compare.add_argument("a", help="baseline record (path or run id)")
    compare.add_argument("b", help="candidate record (path or run id)")
    compare.add_argument("--ledger", metavar="DIR", default=None,
                         help="ledger directory run ids resolve in")
    compare.add_argument("--rel-floor", type=float,
                         default=COMPARE_REL_FLOOR, metavar="FRAC",
                         help="relative noise floor on latency "
                              "percentiles (default "
                              f"{COMPARE_REL_FLOOR})")
    compare.add_argument("--abs-floor-ms", type=float,
                         default=COMPARE_ABS_FLOOR_MS, metavar="MS",
                         help="absolute noise floor in ms (default "
                              f"{COMPARE_ABS_FLOOR_MS})")
    compare.add_argument("--only-changed", action="store_true",
                         help="hide 'unchanged' rows from the table")
    compare.set_defaults(func=cmd_compare)
