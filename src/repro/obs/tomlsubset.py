"""A dependency-free TOML-subset parser shared by every declarative
config file in the repo (``slo.toml`` gates, ``repro run`` scenario
files).

The subset is deliberate: plain tables (``[section]``), table arrays
(``[[section]]``), and ``key = value`` pairs whose values are quoted
strings, integers, floats, or booleans.  Comments (``#``) and blank
lines are ignored.  Anything outside the subset raises the caller's
error class loudly -- a gate or scenario file that cannot be parsed
must never be silently misread.

``tomllib`` only exists from Python 3.11 and this repo adds no
dependencies, which is why the subset lives here (it predates this
module inside :mod:`repro.obs.slo`; the scenario loader made it
shared).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Type


class TomlSubsetError(ValueError):
    """The file is outside the supported TOML subset."""


@dataclass
class TomlTable:
    """One parsed ``[name]`` or ``[[name]]`` table, in file order."""

    name: str
    #: True when declared as a table *array* member (``[[name]]``).
    array: bool
    #: ``source:line`` of the table header (error-message anchor).
    where: str
    items: Dict[str, object] = field(default_factory=dict)


def strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment that is not inside a string."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def parse_value(key: str, raw: str, where: str,
                error: Type[ValueError] = TomlSubsetError):
    """One scalar: quoted string, boolean, int, or float."""
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise error(
            f"{where}: value for {key!r} must be a quoted string, "
            f"number, or boolean, got {raw!r}"
        ) from None


def _parse_header(line: str, where: str,
                  error: Type[ValueError]) -> TomlTable:
    array = line.startswith("[[")
    closer = "]]" if array else "]"
    if not line.endswith(closer):
        raise error(f"{where}: malformed table header {line!r}")
    name = line[2:-2].strip() if array else line[1:-1].strip()
    if not name or "[" in name or "]" in name:
        raise error(f"{where}: malformed table header {line!r}")
    return TomlTable(name=name, array=array, where=where)


def parse_toml_subset(
    text: str,
    source: str = "<toml>",
    error: Type[ValueError] = TomlSubsetError,
) -> List[TomlTable]:
    """Parse ``text`` into tables, in file order.

    Repeated ``[[name]]`` headers produce one table per occurrence;
    repeated keys inside one table keep the last value (matching the
    historical slo parser).  All violations raise ``error``.
    """
    tables: List[TomlTable] = []
    current: TomlTable = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw).strip()
        where = f"{source}:{number}"
        if not line:
            continue
        if line.startswith("["):
            current = _parse_header(line, where, error)
            tables.append(current)
            continue
        if "=" not in line:
            raise error(f"{where}: expected 'key = value'")
        if current is None:
            raise error(f"{where}: key outside any table")
        key, _, raw_value = line.partition("=")
        key = key.strip()
        if not key:
            raise error(f"{where}: expected 'key = value'")
        current.items[key] = parse_value(key, raw_value, where, error)
    return tables
