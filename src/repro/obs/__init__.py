"""``repro.obs`` -- the run ledger: durable observability across runs.

Where :mod:`repro.telemetry` answers "what happened inside this run",
this package answers "how does this run compare to every other run":

* :mod:`~repro.obs.phases` decomposes every request into the latency
  phases the paper's credibility rests on (DNS -> connect -> TLS ->
  TTFB -> page-complete), keyed by policy x protocol x cohort;
* :mod:`~repro.obs.ledger` writes one canonical, shard-deterministic
  run record per invocation (config fingerprint, seed, git describe,
  phase histograms, headline paper metrics, SLO verdicts);
* :mod:`~repro.obs.slo` parses the declarative ``slo.toml`` gate file
  and evaluates it against a record;
* :mod:`~repro.obs.report` renders a record as an ASCII or Markdown
  dashboard (``repro report``);
* :mod:`~repro.obs.compare` produces per-metric regression verdicts
  between two records with noise-floor thresholds (``repro compare``,
  exit 0 clean / 1 regressed / 2 incomparable -- CI-gateable);
* :mod:`~repro.obs.heartbeat` is the live stderr progress line for
  long runs (rate-limited, off when stderr is not a TTY).

Everything rides the existing telemetry plumbing (simulated clock,
snapshot/absorb shard merge), so instrumented runs stay byte-identical
across ``--jobs``.

Only the dependency-free phase recorder is re-exported here; import
the other modules directly (they pull in dataset/analysis layers).
"""

from repro.obs.phases import (  # noqa: F401
    NULL_PHASES,
    PHASES,
    NullPhases,
    PhaseRecorder,
)

__all__ = ["NULL_PHASES", "PHASES", "NullPhases", "PhaseRecorder"]
