"""Run records: one canonical JSONL document per instrumented run.

A **run record** is the durable artifact the ledger keeps per
crawl/traffic/profile invocation.  It is deliberately boring:

* a ``meta`` line -- kind, config fingerprint (the same content
  address the crawl cache uses), seed, git describe, schema version;
* one ``phase`` line per phase histogram (DNS -> connect -> TLS ->
  TTFB -> page, keyed by policy x protocol x cohort), carrying the
  full bucket counts so any percentile can be recomputed later;
* a ``headline`` line with the paper's aggregate metrics;
* zero or more ``slo`` verdict lines (see :mod:`repro.obs.slo`).

Records are canonical JSON (sorted keys, compact separators, phases
in sorted order) and contain **no wall-clock timestamps and no worker
count**, so the same seed produces byte-identical records whatever
``--jobs`` ran it -- `cmp` is a valid determinism check, and
``repro compare`` of two identical-seed runs is guaranteed clean.
"""

from __future__ import annotations

import dataclasses
import json
import math
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.obs.phases import PHASES
from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Bump when the record format changes; ``repro compare`` refuses to
#: compare across schema versions (exit 2, incomparable).
SCHEMA_VERSION = 1

#: Rank of each phase name for report/record ordering; unknown phases
#: sort after the canonical five, alphabetically.
_PHASE_RANK = {name: index for index, name in enumerate(PHASES)}


class LedgerError(ValueError):
    """A record could not be read, parsed, or resolved."""


def git_describe() -> str:
    """Best-effort ``git describe --always --dirty`` of this checkout.

    Purely informational provenance: never compared, empty when the
    package does not live in a git repository.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def canonical_fingerprint(document: dict) -> str:
    """Content address of a run definition (sha256 of canonical JSON,
    truncated like the crawl cache's keys)."""
    import hashlib

    canonical = json.dumps(document, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


# -- phase histogram documents ---------------------------------------------


def _phase_sort_key(doc: dict) -> Tuple:
    name = doc["name"]
    short = name[len("phase."):] if name.startswith("phase.") else name
    return (_PHASE_RANK.get(short, len(PHASES)), name,
            tuple(sorted(doc["labels"].items())))


def phase_docs_from_registry(
    registry: MetricsRegistry,
) -> List[dict]:
    """Extract every ``phase.*`` histogram as a JSON-able doc, in the
    record's canonical order."""
    docs: List[dict] = []
    for metric in registry.metrics():
        if not isinstance(metric, Histogram) \
                or not metric.name.startswith("phase."):
            continue
        docs.append({
            "name": metric.name,
            "labels": dict(metric.labels),
            "bounds": [None if math.isinf(b) else b
                       for b in metric.bounds],
            "counts": list(metric.bucket_counts),
            "count": metric.count,
            "sum": round(metric.sum, 6),
            "min": None if math.isinf(metric.min)
            else round(metric.min, 6),
            "max": None if math.isinf(metric.max)
            else round(metric.max, 6),
        })
    docs.sort(key=_phase_sort_key)
    return docs


def histogram_from_doc(doc: dict) -> Histogram:
    """Rebuild a :class:`Histogram` from a phase doc (or several
    merged ones) so percentile math uses one implementation."""
    bounds = tuple(math.inf if b is None else float(b)
                   for b in doc["bounds"])
    histogram = Histogram(doc["name"], buckets=bounds)
    for index, count in enumerate(doc["counts"]):
        histogram.bucket_counts[index] += int(count)
    histogram.count = int(doc["count"])
    histogram.sum = float(doc["sum"])
    if doc.get("min") is not None:
        histogram.min = float(doc["min"])
    if doc.get("max") is not None:
        histogram.max = float(doc["max"])
    return histogram


def merge_phase_docs(docs: Sequence[dict]) -> Optional[Histogram]:
    """One histogram over several same-phase docs (e.g. every policy
    matching an SLO's filters); ``None`` when nothing matched."""
    merged: Optional[Histogram] = None
    for doc in docs:
        histogram = histogram_from_doc(doc)
        if merged is None:
            merged = histogram
            continue
        if histogram.bounds != merged.bounds:
            raise LedgerError(
                f"phase {doc['name']}: bucket bounds differ across "
                "merged series"
            )
        for index, count in enumerate(histogram.bucket_counts):
            merged.bucket_counts[index] += count
        merged.count += histogram.count
        merged.sum += histogram.sum
        merged.min = min(merged.min, histogram.min)
        merged.max = max(merged.max, histogram.max)
    return merged


# -- the record ------------------------------------------------------------


@dataclass
class RunRecord:
    """One run's canonical ledger document."""

    meta: dict
    phases: List[dict] = field(default_factory=list)
    headline: Dict[str, float] = field(default_factory=dict)
    slo: List[dict] = field(default_factory=list)

    @property
    def run_id(self) -> str:
        return self.meta.get("run", "")

    @property
    def kind(self) -> str:
        return self.meta.get("kind", "")

    @property
    def fingerprint(self) -> str:
        return self.meta.get("fingerprint", "")

    def phase_map(self) -> Dict[Tuple[str, Tuple], dict]:
        """Index phases by ``(name, sorted labels)`` for comparison."""
        return {
            (doc["name"], tuple(sorted(doc["labels"].items()))): doc
            for doc in self.phases
        }

    # -- canonical JSONL ---------------------------------------------------

    def to_jsonl(self) -> str:
        def line(doc: dict) -> str:
            return json.dumps(doc, sort_keys=True,
                              separators=(",", ":"))

        lines = [line({"t": "meta", **self.meta})]
        for doc in sorted(self.phases, key=_phase_sort_key):
            lines.append(line({"t": "phase", **doc}))
        lines.append(line({"t": "headline", "metrics": self.headline}))
        for doc in self.slo:
            out = dict(doc)
            out["t"] = "slo"
            lines.append(line(out))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str, source: str = "<record>"
                   ) -> "RunRecord":
        meta: Optional[dict] = None
        phases: List[dict] = []
        headline: Dict[str, float] = {}
        slo: List[dict] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                doc = json.loads(raw)
            except json.JSONDecodeError as error:
                raise LedgerError(
                    f"{source}:{number}: not JSON ({error})"
                ) from error
            if not isinstance(doc, dict):
                raise LedgerError(
                    f"{source}:{number}: record lines are JSON "
                    f"objects, got {type(doc).__name__}"
                )
            tag = doc.pop("t", None)
            if tag == "meta":
                meta = doc
            elif tag == "phase":
                if "name" not in doc or "labels" not in doc:
                    raise LedgerError(
                        f"{source}:{number}: phase line needs "
                        f"'name' and 'labels'"
                    )
                phases.append(doc)
            elif tag == "headline":
                headline = doc.get("metrics", {})
            elif tag == "slo":
                slo.append(doc)
            else:
                raise LedgerError(
                    f"{source}:{number}: unknown record line type "
                    f"{tag!r}"
                )
        if meta is None:
            raise LedgerError(f"{source}: no meta line")
        return cls(meta=meta, phases=phases, headline=headline,
                   slo=slo)


# -- builders --------------------------------------------------------------


def _base_meta(kind: str, fingerprint: str) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "run": f"{kind}-{fingerprint[:12]}",
        "fingerprint": fingerprint,
        "git": git_describe(),
        "version": __version__,
    }


def crawl_headline(result) -> Dict[str, float]:
    """The paper's aggregate metrics for one crawl result."""
    from repro.core import headline_reductions

    successes = result.successes
    plt_total = sum(a.page_load_time for a in successes)
    reductions = headline_reductions(result.archives)
    return {
        "pages_attempted": result.attempted,
        "pages_succeeded": result.success_count,
        "pages_failed": result.attempted - result.success_count,
        "requests": result.total_requests,
        "dns_queries": sum(a.dns_query_count() for a in successes),
        "tls_handshakes": sum(
            a.tls_connection_count() for a in successes
        ),
        "new_connections": sum(
            a.new_connection_count() for a in successes
        ),
        "mean_plt_ms": round(
            plt_total / len(successes), 6
        ) if successes else 0.0,
        "dns_reduction": round(reductions["dns_reduction"], 6),
        "validation_reduction": round(
            reductions["validation_reduction"], 6
        ),
    }


def traffic_headline(aggregate) -> Dict[str, float]:
    """The fleet-level metrics of one traffic scenario run."""
    totals = aggregate.totals
    completed = aggregate.completed
    plt_total = sum(
        tally.plt_total_ms for tally in aggregate.cohorts.values()
    )
    return {
        "users": aggregate.users,
        "visits": aggregate.visits,
        "completed": completed,
        "failed": aggregate.failed,
        "retries": aggregate.retries,
        "edge_connections": totals.connections,
        "handshakes": totals.handshakes,
        "resumed": totals.resumed,
        "requests": totals.requests,
        "coalesced_requests": totals.coalesced_requests,
        "goaways": totals.goaways,
        "peak_concurrent": totals.peak_concurrent,
        "dns_queries": aggregate.dns_queries,
        "mean_plt_ms": round(
            plt_total / completed, 6
        ) if completed else 0.0,
    }


def build_crawl_record(
    kind: str,
    config,
    params,
    shard_count: int,
    result,
    registry: MetricsRegistry,
    slo_rules: Sequence = (),
) -> RunRecord:
    """The run record of one (possibly sharded) crawl.

    The fingerprint is the crawl cache's own content address, so a
    record and the cache entry it rode along with agree about what
    "the same run" means.  ``jobs`` is deliberately absent.
    """
    from repro.dataset.cache import cache_key
    from repro.obs.slo import evaluate_slos

    fingerprint = cache_key(config, params, shard_count)
    meta = _base_meta(kind, fingerprint)
    meta.update(
        seed=config.seed,
        sites=config.site_count,
        policy=params.policy,
        alpn=params.alpn,
        crawl_seed=params.seed,
        speculative_rate=params.speculative_rate,
        dns_latency_ms=params.dns_latency_ms,
        shards=int(shard_count),
    )
    phases = phase_docs_from_registry(registry)
    headline = crawl_headline(result)
    return RunRecord(
        meta=meta,
        phases=phases,
        headline=headline,
        slo=evaluate_slos(slo_rules, phases, headline),
    )


def build_traffic_record(
    scenario,
    shard_count: int,
    aggregate,
    registry: MetricsRegistry,
    slo_rules: Sequence = (),
    scenario_name: str = "",
) -> RunRecord:
    """The run record of one traffic scenario run."""
    from repro.obs.slo import evaluate_slos

    scenario_doc = dataclasses.asdict(scenario)
    fingerprint = canonical_fingerprint({
        "version": SCHEMA_VERSION,
        "scenario": scenario_doc,
        "shard_count": int(shard_count),
    })
    meta = _base_meta("traffic", fingerprint)
    meta.update(
        seed=scenario.seed,
        sites=scenario.site_count,
        users=scenario.users,
        scenario=scenario_name,
        deployment=scenario.deployment,
        cohorts=",".join(c.name for c in scenario.cohorts),
        shards=int(shard_count),
    )
    phases = phase_docs_from_registry(registry)
    headline = traffic_headline(aggregate)
    return RunRecord(
        meta=meta,
        phases=phases,
        headline=headline,
        slo=evaluate_slos(slo_rules, phases, headline),
    )


# -- ledger directory IO ---------------------------------------------------


def write_record(directory, record: RunRecord) -> Path:
    """Write ``record`` as ``<dir>/<run_id>.jsonl`` (idempotent: the
    content is a pure function of the run definition)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record.run_id}.jsonl"
    path.write_text(record.to_jsonl(), encoding="utf-8")
    return path


def load_record(path) -> RunRecord:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LedgerError(f"cannot read {path}: {error}") from error
    return RunRecord.from_jsonl(text, source=str(path))


def resolve_record_path(ref: str, ledger_dir=None) -> Path:
    """A record argument is a path, or a run id in the ledger dir."""
    direct = Path(ref)
    if direct.is_file():
        return direct
    if ledger_dir is not None:
        candidate = Path(ledger_dir) / f"{ref}.jsonl"
        if candidate.is_file():
            return candidate
        if not ref.endswith(".jsonl"):
            candidate = Path(ledger_dir) / ref
            if candidate.is_file():
                return candidate
    raise LedgerError(
        f"no run record at {ref!r}"
        + (f" (also tried under {ledger_dir})" if ledger_dir else "")
    )
