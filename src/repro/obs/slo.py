"""Declarative SLOs (``slo.toml``) and their evaluation.

An SLO file is a list of ``[[slo]]`` tables.  Two rule shapes exist:

* **phase rules** gate a latency percentile of one phase histogram,
  optionally filtered by policy/protocol/cohort (``fnmatch`` globs,
  ``*`` matches everything)::

      [[slo]]
      name = "dns-p90"
      phase = "dns"          # dns | connect | tls | ttfb | page
      quantile = 0.9
      max_ms = 200.0
      policy = "chromium"    # optional filters, default "*"

* **metric rules** gate a headline metric with a max and/or min::

      [[slo]]
      name = "no-failures"
      metric = "pages_failed"
      max = 0

The file format is the repo-wide TOML subset (table arrays, quoted
strings, numbers, booleans, comments) parsed by
:mod:`repro.obs.tomlsubset`, so the gate file works on every
supported Python -- ``tomllib`` only exists from 3.11 and this repo
adds no dependencies.  Anything outside the subset is a loud
:class:`SloError`, never a silent misread.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.tomlsubset import parse_toml_subset


class SloError(ValueError):
    """The SLO file could not be parsed or validated."""


@dataclass
class SloRule:
    """One gate: either a phase-percentile rule or a metric rule."""

    name: str
    phase: Optional[str] = None
    quantile: Optional[float] = None
    max_ms: Optional[float] = None
    metric: Optional[str] = None
    max_value: Optional[float] = None
    min_value: Optional[float] = None
    policy: str = "*"
    protocol: str = "*"
    cohort: str = "*"

    @property
    def target(self) -> str:
        """Human-readable statement of the gate."""
        if self.phase is not None:
            filters = "".join(
                f" {key}={value}"
                for key, value in (("policy", self.policy),
                                   ("protocol", self.protocol),
                                   ("cohort", self.cohort))
                if value != "*"
            )
            return (f"p{self.quantile * 100:g} {self.phase}"
                    f" <= {self.max_ms:g}ms{filters}")
        parts = []
        if self.max_value is not None:
            parts.append(f"{self.metric} <= {self.max_value:g}")
        if self.min_value is not None:
            parts.append(f"{self.metric} >= {self.min_value:g}")
        return " and ".join(parts)

    def matches(self, labels: Dict[str, str]) -> bool:
        return (
            fnmatchcase(labels.get("policy", "-"), self.policy)
            and fnmatchcase(labels.get("protocol", "-"), self.protocol)
            and fnmatchcase(labels.get("cohort", "-"), self.cohort)
        )


# -- the TOML-subset parser ------------------------------------------------

_RULE_KEYS = {
    "name", "phase", "quantile", "max_ms", "metric", "max", "min",
    "policy", "protocol", "cohort",
}
_STRING_KEYS = {"name", "phase", "metric", "policy", "protocol",
                "cohort"}


def _finish_rule(table: Dict[str, object], where: str) -> SloRule:
    unknown = set(table) - _RULE_KEYS
    if unknown:
        raise SloError(
            f"{where}: unknown key(s) {sorted(unknown)}; "
            f"expected {sorted(_RULE_KEYS)}"
        )
    for key in _STRING_KEYS & set(table):
        if not isinstance(table[key], str):
            raise SloError(f"{where}: {key!r} must be a string")
    phase = table.get("phase")
    metric = table.get("metric")
    if (phase is None) == (metric is None):
        raise SloError(
            f"{where}: exactly one of 'phase' or 'metric' is required"
        )
    if phase is not None:
        quantile = table.get("quantile")
        max_ms = table.get("max_ms")
        if quantile is None or max_ms is None:
            raise SloError(
                f"{where}: a phase rule needs 'quantile' and 'max_ms'"
            )
        quantile = float(quantile)
        if not 0.0 <= quantile <= 1.0:
            raise SloError(
                f"{where}: quantile must be in [0, 1], got {quantile}"
            )
        name = table.get("name") or f"{phase}-p{quantile * 100:g}"
        return SloRule(
            name=str(name),
            phase=str(phase),
            quantile=quantile,
            max_ms=float(max_ms),
            policy=str(table.get("policy", "*")),
            protocol=str(table.get("protocol", "*")),
            cohort=str(table.get("cohort", "*")),
        )
    max_value = table.get("max")
    min_value = table.get("min")
    if max_value is None and min_value is None:
        raise SloError(
            f"{where}: a metric rule needs 'max' and/or 'min'"
        )
    name = table.get("name") or str(metric)
    return SloRule(
        name=str(name),
        metric=str(metric),
        max_value=None if max_value is None else float(max_value),
        min_value=None if min_value is None else float(min_value),
    )


def parse_slo(text: str, source: str = "<slo>") -> List[SloRule]:
    """Parse an ``slo.toml`` into rules (see the module docstring for
    the accepted subset)."""
    tables = parse_toml_subset(text, source=source, error=SloError)
    for table in tables:
        if table.name != "slo" or not table.array:
            head = f"[[{table.name}]]" if table.array \
                else f"[{table.name}]"
            raise SloError(
                f"{table.where}: only [[slo]] tables are supported, "
                f"got {head!r}"
            )
    rules = [_finish_rule(table.items, table.where)
             for table in tables]
    names = [rule.name for rule in rules]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise SloError(
            f"{source}: duplicate rule name(s) {sorted(duplicates)}"
        )
    return rules


def load_slo(path) -> List[SloRule]:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise SloError(f"cannot read {path}: {error}") from error
    return parse_slo(text, source=str(path))


# -- evaluation ------------------------------------------------------------


def evaluate_slos(
    rules: Sequence[SloRule],
    phase_docs: Sequence[dict],
    headline: Dict[str, float],
) -> List[dict]:
    """Evaluate every rule against a record's phases and headline.

    Returns one verdict doc per rule (the record's ``slo`` lines):
    ``{"name", "target", "measured", "count", "ok"}``.  A rule with no
    matching data passes with ``measured: null`` -- absence of traffic
    is not a latency violation, and the report renders it as such.
    """
    from repro.obs.ledger import merge_phase_docs

    rows: List[dict] = []
    for rule in rules:
        if rule.phase is not None:
            wanted = f"phase.{rule.phase}"
            matching = [
                doc for doc in phase_docs
                if doc["name"] == wanted and rule.matches(doc["labels"])
            ]
            merged = merge_phase_docs(matching) if matching else None
            if merged is None or not merged.count:
                rows.append({
                    "name": rule.name, "target": rule.target,
                    "measured": None, "count": 0, "ok": True,
                })
                continue
            measured = round(merged.percentile(rule.quantile), 6)
            rows.append({
                "name": rule.name, "target": rule.target,
                "measured": measured, "count": merged.count,
                "ok": measured <= rule.max_ms,
            })
            continue
        value = headline.get(rule.metric)
        if value is None:
            rows.append({
                "name": rule.name, "target": rule.target,
                "measured": None, "count": 0, "ok": True,
            })
            continue
        ok = True
        if rule.max_value is not None and value > rule.max_value:
            ok = False
        if rule.min_value is not None and value < rule.min_value:
            ok = False
        rows.append({
            "name": rule.name, "target": rule.target,
            "measured": value, "count": 1, "ok": ok,
        })
    return rows


def slo_burn(
    rules: Sequence[SloRule],
    phase_docs: Sequence[dict],
) -> Tuple[int, int]:
    """Mid-run burn: ``(failing, evaluated)`` over the phase rules
    only (headline metrics do not exist until the run ends).  The
    heartbeat prints this against merged-so-far histograms."""
    phase_rules = [rule for rule in rules if rule.phase is not None]
    verdicts = evaluate_slos(phase_rules, phase_docs, {})
    failing = sum(1 for row in verdicts if not row["ok"])
    return failing, len(verdicts)
