"""``repro compare``: per-metric regression verdicts between two runs.

Compares every phase series' percentiles and every shared headline
metric of record B (candidate) against record A (baseline), with a
noise floor so bucketed-percentile jitter does not gate CI:

* a latency delta only counts when it exceeds
  ``max(abs_floor_ms, rel_floor * baseline)``;
* headline counters gate only when the two records share a config
  fingerprint (same world, same seed, same shard layout -- then any
  drift is a code-behaviour change); across different configs they
  are reported as informational rows instead.

Cross-config comparisons (e.g. a baseline cohort mix against a
fleet-ORIGIN one) may share *no* phase series at all -- the cohort
labels differ -- and still be meaningful through their headline
metrics; that case compares the headline with a note rather than
refusing.

Exit semantics (:attr:`CompareResult.exit_code`): 0 clean (possibly
with improvements), 1 at least one regression, 2 incomparable
(different schema or kind, or nothing shared -- neither a phase
series nor a headline metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.render import render_table
from repro.obs.ledger import RunRecord, histogram_from_doc

#: Default noise floors.
REL_FLOOR = 0.05
ABS_FLOOR_MS = 5.0

#: Quantiles gated per phase series.
COMPARE_QUANTILES = (0.5, 0.9, 0.99)

#: Headline metrics where an increase is a regression (when records
#: share a fingerprint).
WORSE_IF_HIGHER = frozenset({
    "pages_failed", "failed", "retries", "goaways", "mean_plt_ms",
    "dns_queries", "tls_handshakes", "new_connections",
    "edge_connections", "handshakes",
})
#: Headline metrics where a decrease is a regression.
WORSE_IF_LOWER = frozenset({
    "pages_succeeded", "completed", "dns_reduction",
    "validation_reduction", "resumed", "coalesced_requests",
})


@dataclass
class CompareRow:
    """One compared quantity."""

    metric: str
    group: str
    a: float
    b: float
    verdict: str  # regressed | improved | unchanged | changed | info

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclass
class CompareResult:
    rows: List[CompareRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    incomparable: Optional[str] = None

    @property
    def regressed(self) -> List[CompareRow]:
        return [row for row in self.rows if row.verdict == "regressed"]

    @property
    def exit_code(self) -> int:
        if self.incomparable is not None:
            return 2
        return 1 if self.regressed else 0


def _label_group(labels_key) -> str:
    parts = [f"{key}={value}" for key, value in labels_key
             if value != "-"]
    return " ".join(parts) if parts else "-"


def compare_records(
    a: RunRecord,
    b: RunRecord,
    rel_floor: float = REL_FLOOR,
    abs_floor_ms: float = ABS_FLOOR_MS,
) -> CompareResult:
    """Compare candidate ``b`` against baseline ``a``."""
    result = CompareResult()
    schema_a = a.meta.get("schema")
    schema_b = b.meta.get("schema")
    if schema_a != schema_b:
        result.incomparable = (
            f"schema mismatch: {schema_a} vs {schema_b}"
        )
        return result
    if a.kind != b.kind:
        result.incomparable = (
            f"kind mismatch: {a.kind!r} vs {b.kind!r}"
        )
        return result
    same_config = bool(a.fingerprint) \
        and a.fingerprint == b.fingerprint

    phases_a = a.phase_map()
    phases_b = b.phase_map()
    common = sorted(set(phases_a) & set(phases_b),
                    key=lambda key: (_phase_order(a, key), key))
    if not common:
        if not (set(a.headline) & set(b.headline)):
            result.incomparable = (
                "nothing shared: no overlapping phase series or "
                "headline metrics"
            )
            return result
        result.notes.append(
            "no overlapping phase series; latency percentiles not "
            "compared"
        )
    for key in sorted(set(phases_a) - set(phases_b)):
        result.notes.append(
            f"series only in baseline: {key[0]} [{_label_group(key[1])}]"
        )
    for key in sorted(set(phases_b) - set(phases_a)):
        result.notes.append(
            f"series only in candidate: {key[0]} [{_label_group(key[1])}]"
        )

    for key in common:
        name, labels_key = key
        group = _label_group(labels_key)
        hist_a = histogram_from_doc(phases_a[key])
        hist_b = histogram_from_doc(phases_b[key])
        for quantile in COMPARE_QUANTILES:
            pa = hist_a.percentile(quantile)
            pb = hist_b.percentile(quantile)
            floor = max(abs_floor_ms, rel_floor * abs(pa))
            if pb - pa > floor:
                verdict = "regressed"
            elif pa - pb > floor:
                verdict = "improved"
            else:
                verdict = "unchanged"
            result.rows.append(CompareRow(
                metric=f"{name} p{quantile * 100:g}",
                group=group, a=pa, b=pb, verdict=verdict,
            ))
        if hist_a.count != hist_b.count:
            # Sample-count drift is behavioural, not a latency
            # regression; surface it without gating.
            result.rows.append(CompareRow(
                metric=f"{name} count", group=group,
                a=hist_a.count, b=hist_b.count, verdict="changed",
            ))

    shared_metrics = sorted(
        set(a.headline) & set(b.headline)
    )
    if not same_config and shared_metrics:
        result.notes.append(
            "config fingerprints differ; headline deltas are "
            "informational only"
        )
    for metric in shared_metrics:
        va = float(a.headline[metric])
        vb = float(b.headline[metric])
        if va == vb:
            continue
        verdict = "info"
        if same_config:
            floor = abs_floor_ms if metric.endswith("_ms") \
                else rel_floor * abs(va)
            if metric in WORSE_IF_HIGHER and vb - va > floor:
                verdict = "regressed"
            elif metric in WORSE_IF_LOWER and va - vb > floor:
                verdict = "regressed"
            elif metric in WORSE_IF_HIGHER | WORSE_IF_LOWER:
                verdict = "improved" if (
                    (metric in WORSE_IF_HIGHER and vb < va)
                    or (metric in WORSE_IF_LOWER and vb > va)
                ) else "changed"
            else:
                verdict = "changed"
        result.rows.append(CompareRow(
            metric=metric, group="headline", a=va, b=vb,
            verdict=verdict,
        ))
    return result


def _phase_order(record: RunRecord, key) -> int:
    for index, doc in enumerate(record.phases):
        if (doc["name"], tuple(sorted(doc["labels"].items()))) == key:
            return index
    return len(record.phases)


def render_compare(
    result: CompareResult,
    label_a: str,
    label_b: str,
    only_changed: bool = False,
) -> str:
    """ASCII verdict table (stdout of ``repro compare``)."""
    if result.incomparable is not None:
        return f"incomparable: {result.incomparable}\n"
    rows = result.rows
    if only_changed:
        rows = [row for row in rows if row.verdict != "unchanged"]
    table_rows = [
        [row.metric, row.group, f"{row.a:g}", f"{row.b:g}",
         f"{row.delta:+g}", row.verdict]
        for row in rows
    ]
    sections = []
    if table_rows:
        sections.append(render_table(
            f"compare: {label_a} (A) vs {label_b} (B)",
            ["metric", "group", "A", "B", "delta", "verdict"],
            table_rows,
        ))
    else:
        sections.append(
            f"compare: {label_a} (A) vs {label_b} (B): no differences"
        )
    for note in result.notes:
        sections.append(f"note: {note}")
    regressed = result.regressed
    if regressed:
        names = ", ".join(
            f"{row.metric} [{row.group}]" for row in regressed
        )
        sections.append(f"REGRESSED ({len(regressed)}): {names}")
    else:
        sections.append("clean: no regressions above the noise floor")
    return "\n\n".join(sections) + "\n"
