"""Per-request latency phase decomposition.

The run ledger wants every request broken into the phases the paper
argues about -- how long the browser waited on DNS, on the transport
handshake, on TLS, on the first response byte, and on the full page --
keyed by policy x protocol x cohort so coalescing's effect on each
phase is visible per population slice.

A :class:`PhaseRecorder` is a thin, label-caching front for ``phase.*``
histograms in a shared :class:`~repro.telemetry.metrics.MetricsRegistry`.
Hot paths hold a recorder (defaulting to the no-op :data:`NULL_PHASES`)
and guard on ``phases.enabled`` so un-instrumented runs pay a single
attribute read.  Because the histograms live in the ordinary metrics
registry they merge across shards via the existing snapshot/absorb
path, keeping records byte-identical across ``--jobs``.

This module is import-dependency-free on purpose: transport, browser,
and dnssim layers all hold recorders without pulling the ledger in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import Histogram, MetricsRegistry

#: The canonical phase order (also the report's row order).
PHASES: Tuple[str, ...] = ("dns", "connect", "tls", "ttfb", "page")

#: Label value for dimensions that do not apply (e.g. protocol of a
#: DNS lookup, cohort of a single-policy crawl).
NOT_APPLICABLE = "-"


class NullPhases:
    """The disabled recorder every layer defaults to."""

    __slots__ = ()
    enabled = False

    def observe(self, phase: str, value_ms: float,
                protocol: str = NOT_APPLICABLE) -> None:
        """Drop the observation."""


#: Shared no-op instance.
NULL_PHASES = NullPhases()


class PhaseRecorder:
    """Observe phase latencies into ``phase.<name>`` histograms.

    One recorder carries one (policy, cohort) identity -- the crawl
    makes one per crawler, the traffic simulation one per user -- and
    stamps it on every series it touches; recorders with the same
    identity over the same registry share the underlying histograms.
    """

    __slots__ = ("registry", "policy", "cohort", "_cache")
    enabled = True

    def __init__(self, registry: "MetricsRegistry",
                 policy: str = NOT_APPLICABLE,
                 cohort: str = NOT_APPLICABLE) -> None:
        self.registry = registry
        self.policy = policy
        self.cohort = cohort
        self._cache: Dict[Tuple[str, str], "Histogram"] = {}

    def observe(self, phase: str, value_ms: float,
                protocol: str = NOT_APPLICABLE) -> None:
        key = (phase, protocol)
        histogram = self._cache.get(key)
        if histogram is None:
            histogram = self.registry.histogram(
                f"phase.{phase}",
                policy=self.policy,
                protocol=protocol,
                cohort=self.cohort,
            )
            self._cache[key] = histogram
        histogram.observe(value_ms)


def observe_handshake(phases, session) -> None:
    """Record the connect/tls phases of a now-ready session.

    Dialers register this via ``session.when_ready`` at dial time (so
    it runs before the pool's own ready callbacks and never perturbs
    them).  QUIC sessions report ``connect`` as 0 and the combined
    1-RTT handshake as ``tls`` -- the same split the HAR timings use.
    """
    started = session.connect_started_at
    tcp_at = session.tcp_connected_at
    ready_at = session.connected_at
    if started is None or tcp_at is None or ready_at is None:
        return
    protocol = session.negotiated_protocol or NOT_APPLICABLE
    phases.observe("connect", tcp_at - started, protocol=protocol)
    phases.observe("tls", ready_at - tcp_at, protocol=protocol)
