"""``repro report``: render one run record as a dashboard.

ASCII (terminal) or Markdown (CI artifact) -- same sections either
way: run metadata, per-phase latency percentiles broken out by
policy x protocol x cohort, the headline paper metrics, and the SLO
verdicts stored in (or re-evaluated against) the record.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.render import render_table
from repro.obs.ledger import RunRecord, histogram_from_doc

#: Percentiles shown per phase series.
REPORT_QUANTILES = (0.5, 0.9, 0.99)


def _markdown_table(title: str, headers: Sequence[str],
                    rows: Sequence[Sequence[object]]) -> str:
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in rows:
        lines.append(
            "| " + " | ".join(str(value) for value in row) + " |"
        )
    return "\n".join(lines)


def _table(fmt: str, title: str, headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> str:
    if fmt == "markdown":
        return _markdown_table(title, headers, rows)
    return render_table(title, headers, rows)


def _ms(value: float) -> str:
    return f"{value:.1f}"


def phase_rows(record: RunRecord) -> List[List[str]]:
    """Percentile rows for every phase series, in canonical order."""
    rows: List[List[str]] = []
    for doc in record.phases:
        histogram = histogram_from_doc(doc)
        labels = doc["labels"]
        name = doc["name"]
        short = name[len("phase."):] if name.startswith("phase.") \
            else name
        row = [
            short,
            labels.get("policy", "-"),
            labels.get("protocol", "-"),
            labels.get("cohort", "-"),
            str(histogram.count),
            _ms(histogram.mean),
        ]
        row.extend(
            _ms(histogram.percentile(q)) for q in REPORT_QUANTILES
        )
        row.append(_ms(histogram.max) if histogram.count else "-")
        rows.append(row)
    return rows


def render_report(record: RunRecord, fmt: str = "ascii") -> str:
    """The full dashboard for one record."""
    sections: List[str] = []
    if fmt == "markdown":
        sections.append(f"## Run `{record.run_id}`")
    else:
        sections.append(f"run {record.run_id}")
    meta_rows = [
        [key, str(value)]
        for key, value in sorted(record.meta.items())
        if key != "run"
    ]
    sections.append(_table(fmt, "run metadata", ["field", "value"],
                           meta_rows))
    headers = ["phase", "policy", "protocol", "cohort", "count",
               "mean ms"]
    headers.extend(f"p{q * 100:g} ms" for q in REPORT_QUANTILES)
    headers.append("max ms")
    rows = phase_rows(record)
    if rows:
        sections.append(
            _table(fmt, "phase latency (ms)", headers, rows)
        )
    else:
        sections.append("(no phase histograms in this record)")
    headline_rows = [
        [key, str(value)]
        for key, value in sorted(record.headline.items())
    ]
    if headline_rows:
        sections.append(_table(fmt, "headline metrics",
                               ["metric", "value"], headline_rows))
    if record.slo:
        slo_rows = []
        for doc in record.slo:
            if doc.get("measured") is None:
                verdict, measured = "no data", "-"
            else:
                verdict = "PASS" if doc.get("ok") else "FAIL"
                measured = str(doc["measured"])
            slo_rows.append([
                doc.get("name", "?"), doc.get("target", ""),
                measured, str(doc.get("count", 0)), verdict,
            ])
        sections.append(_table(
            fmt, "SLO verdicts",
            ["slo", "target", "measured", "samples", "verdict"],
            slo_rows,
        ))
    return "\n\n".join(sections) + "\n"


def slo_failures(record: RunRecord) -> List[str]:
    """Names of failing SLO rows (for ``repro report --check``)."""
    return [
        doc.get("name", "?") for doc in record.slo
        if doc.get("measured") is not None and not doc.get("ok")
    ]
