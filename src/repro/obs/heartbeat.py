"""The live stderr heartbeat for long runs.

One ``\\r``-rewritten status line -- sites done, visits/sec, open
connections, SLO burn -- refreshed at most every ``min_interval_s``
of *wall* clock (the only place the observability stack touches real
time, which is why it must never leak into records or stdout).
Disabled automatically when stderr is not a TTY, so piped output,
tests, and CI logs see nothing.
"""

from __future__ import annotations

import sys
import time
from typing import Mapping, Optional


class Heartbeat:
    """Rate-limited single-line progress display.

    ``stream`` and ``clock`` are injectable for tests; ``enabled``
    defaults to ``stream.isatty()``.
    """

    def __init__(
        self,
        stream=None,
        min_interval_s: float = 0.5,
        clock=time.monotonic,
        enabled: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.clock = clock
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty()) if callable(isatty) else False
        self.enabled = enabled
        self.started_at = self.clock()
        self._last_tick: Optional[float] = None
        self._wrote = False

    def elapsed(self) -> float:
        return self.clock() - self.started_at

    def tick(self, fields: Mapping[str, object],
             force: bool = False) -> bool:
        """Maybe redraw the status line; returns whether it drew."""
        if not self.enabled:
            return False
        now = self.clock()
        if not force and self._last_tick is not None \
                and now - self._last_tick < self.min_interval_s:
            return False
        self._last_tick = now
        body = "  ".join(
            f"{key} {value}" for key, value in fields.items()
        )
        # \x1b[K clears any longer previous line's tail.
        self.stream.write(f"\r[{now - self.started_at:6.1f}s] {body}\x1b[K")
        self.stream.flush()
        self._wrote = True
        return True

    def close(self) -> None:
        """End the status line so subsequent output starts clean."""
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False
