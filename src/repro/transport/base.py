"""The protocol-agnostic session layer.

The browser (pool, policies, engine) used to be hard-wired to the
concrete TLS-over-TCP HTTP/2 classes; this module defines the seam
that decouples it.  A :class:`Dialer` knows how to create an
unconnected :class:`Session` toward ``(hostname, ip)``; a
:class:`Session` exposes the uniform life cycle the pool drives
(``connect`` / ``when_ready`` / ``request`` / ``close``) plus the
coalescing-relevant facts (certificate coverage, ORIGIN set) the
policies consult; and :class:`SessionCapabilities` is the typed record
the pool keys reuse decisions on, instead of ``isinstance`` checks.

Concrete implementations live in :mod:`repro.transport.tcp` (the
``tcp-tls`` dialer wrapping :mod:`repro.h2`) and
:mod:`repro.transport.quicsim` (the deterministic QUIC-flavored
dialer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

#: Stream budget advertised by multiplexing sessions (mirrors the h2
#: client's MAX_CONCURRENT_STREAMS without importing it here).
DEFAULT_MAX_STREAMS = 100


@dataclass(frozen=True)
class SessionCapabilities:
    """What a session can do, as far as reuse decisions care.

    ``alpn`` is the negotiated (or expected) application protocol;
    ``resumable_across_hostnames`` marks tickets usable for any
    hostname the certificate covers (QUIC per Sy et al.);
    ``zero_rtt`` marks sessions that can carry requests in the first
    handshake flight; ``supports_origin_frame`` gates ORIGIN-set
    coalescing; ``max_streams`` is the concurrent-stream budget (1 for
    HTTP/1.1).
    """

    alpn: str = "h2"
    resumable_across_hostnames: bool = False
    zero_rtt: bool = False
    supports_origin_frame: bool = False
    max_streams: int = 1

    @property
    def can_multiplex(self) -> bool:
        return self.max_streams > 1


#: Capabilities assumed for a multiplexing session that predates the
#: capability record (duck-typed test doubles).
_H2_LIKE = SessionCapabilities(
    alpn="h2", supports_origin_frame=True,
    max_streams=DEFAULT_MAX_STREAMS,
)
_H1_LIKE = SessionCapabilities(alpn="http/1.1", max_streams=1)


def capabilities_of(session) -> SessionCapabilities:
    """The session's capability record, derived from duck-typed
    attributes when the session predates :class:`SessionCapabilities`."""
    caps = getattr(session, "capabilities", None)
    if caps is not None:
        return caps
    if getattr(session, "can_multiplex", True):
        return _H2_LIKE
    return _H1_LIKE


@dataclass(frozen=True)
class Endpoint:
    """Where a session terminates: host, port, and which transport
    family carries it.  Pool entries are indexed by
    ``(endpoint, capabilities)``."""

    hostname: str
    port: int = 443
    transport: str = "tcp-tls"


class Session:
    """One protocol session the pool can hold and the engine can drive.

    Concrete sessions provide, beyond the methods below: ``ready`` /
    ``failed`` / ``closed`` state flags, ``h1_busy``,
    ``negotiated_protocol``, the handshake timestamps
    (``connect_started_at``, ``tcp_connected_at``, ``connected_at``),
    and ``leaf_certificate`` / ``origin_set``.
    """

    capabilities = SessionCapabilities()

    def connect(
        self,
        on_ready: Optional[Callable[[], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        raise NotImplementedError

    def when_ready(
        self,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        raise NotImplementedError

    def request(self, authority, path, on_response, extra_headers=()):
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def can_multiplex(self) -> bool:
        return self.capabilities.can_multiplex

    def certificate_covers(self, hostname: str) -> bool:
        raise NotImplementedError

    def origin_set_covers(self, hostname: str) -> bool:
        raise NotImplementedError

    @property
    def origin_set(self) -> FrozenSet[str]:
        return frozenset()


class Dialer:
    """Creates unconnected sessions for one transport family.

    ``dial`` only constructs the session; the pool registers it and
    then calls :meth:`Session.connect`, so registration order (and
    with it every downstream decision) is identical to the
    pre-refactor flow.
    """

    #: Transport-family name; becomes ``Endpoint.transport``.
    name = "base"
    #: ALPN this dialer is expected to negotiate (for pool indexing
    #: before the handshake completes).
    alpn = "h2"

    def dial(
        self, hostname: str, ip: str, tls13: Optional[bool] = None
    ) -> Session:
        raise NotImplementedError

    def endpoint(self, hostname: str, port: int = 443) -> Endpoint:
        return Endpoint(hostname=hostname, port=port, transport=self.name)
