"""Protocol-agnostic session layer: dialers, sessions, capabilities.

Only the interfaces (:mod:`repro.transport.base`) and the shared
record framing (:mod:`repro.transport.framing`) are imported eagerly;
the concrete dialers (:mod:`repro.transport.tcp`,
:mod:`repro.transport.quicsim`) import protocol stacks that in turn
depend on the framing here, so importers pull them in directly.
"""

from repro.transport.base import (
    DEFAULT_MAX_STREAMS,
    Dialer,
    Endpoint,
    Session,
    SessionCapabilities,
    capabilities_of,
)
from repro.transport.framing import (
    RECORD_HEADER_LEN,
    pack_record,
    parse_records,
)

__all__ = [
    "DEFAULT_MAX_STREAMS",
    "Dialer",
    "Endpoint",
    "Session",
    "SessionCapabilities",
    "capabilities_of",
    "RECORD_HEADER_LEN",
    "pack_record",
    "parse_records",
]
