"""Length-prefixed record framing shared by every simulated protocol.

Both the TLS-over-TCP channel (:mod:`repro.h2.tls_channel`) and the
QUIC-flavored datagram session (:mod:`repro.transport.quicsim`) frame
their wire bytes as 5-byte-header records (type + 32-bit length), and
the on-path middlebox model (:mod:`repro.deployment.middlebox`) parses
the same framing to inspect traffic.  This module is the single
definition all three share.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

RECORD_HEADER_LEN = 5

REC_HELLO = 0x01
REC_SHELLO = 0x06
REC_CERT = 0x02
REC_KEYX = 0x04
REC_FINISHED = 0x03
REC_TICKET = 0x07
REC_APPDATA = 0x17
REC_ALERT = 0x15


_RECORD_STRUCT = struct.Struct(">BI")


def pack_record(record_type: int, payload: bytes) -> bytes:
    return _RECORD_STRUCT.pack(record_type, len(payload)) + payload


def parse_records(buffer: bytes) -> Tuple[List[Tuple[int, bytes]], bytes]:
    """Parse complete records off ``buffer``; returns (records, rest).

    Walks the buffer with a ``memoryview`` and an offset so a burst of N
    records costs one tail copy instead of N shrinking-buffer copies.
    """
    records: List[Tuple[int, bytes]] = []
    view = memoryview(buffer)
    total = len(view)
    offset = 0
    while total - offset >= RECORD_HEADER_LEN:
        record_type, length = _RECORD_STRUCT.unpack_from(view, offset)
        end = offset + RECORD_HEADER_LEN + length
        if end > total:
            break
        records.append(
            (record_type, bytes(view[offset + RECORD_HEADER_LEN : end]))
        )
        offset = end
    if offset == 0:
        return records, buffer
    return records, bytes(view[offset:])


def consume_records(buffer: bytearray) -> List[Tuple[int, bytes]]:
    """Parse complete records out of a persistent receive buffer.

    Consumed bytes are deleted from ``buffer`` in place, so channels can
    keep one reusable ``bytearray`` per connection instead of rebuilding
    a ``bytes`` object on every delivery.
    """
    records: List[Tuple[int, bytes]] = []
    offset = 0
    try:
        with memoryview(buffer) as view:
            total = len(view)
            while total - offset >= RECORD_HEADER_LEN:
                record_type, length = _RECORD_STRUCT.unpack_from(
                    view, offset
                )
                end = offset + RECORD_HEADER_LEN + length
                if end > total:
                    break
                records.append(
                    (record_type,
                     bytes(view[offset + RECORD_HEADER_LEN : end]))
                )
                offset = end
    finally:
        if offset:
            del buffer[:offset]
    return records
