"""Length-prefixed record framing shared by every simulated protocol.

Both the TLS-over-TCP channel (:mod:`repro.h2.tls_channel`) and the
QUIC-flavored datagram session (:mod:`repro.transport.quicsim`) frame
their wire bytes as 5-byte-header records (type + 32-bit length), and
the on-path middlebox model (:mod:`repro.deployment.middlebox`) parses
the same framing to inspect traffic.  This module is the single
definition all three share.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

RECORD_HEADER_LEN = 5

REC_HELLO = 0x01
REC_SHELLO = 0x06
REC_CERT = 0x02
REC_KEYX = 0x04
REC_FINISHED = 0x03
REC_TICKET = 0x07
REC_APPDATA = 0x17
REC_ALERT = 0x15


def pack_record(record_type: int, payload: bytes) -> bytes:
    return struct.pack(">BI", record_type, len(payload)) + payload


def parse_records(buffer: bytes) -> Tuple[List[Tuple[int, bytes]], bytes]:
    """Parse complete records off ``buffer``; returns (records, rest)."""
    records: List[Tuple[int, bytes]] = []
    while len(buffer) >= RECORD_HEADER_LEN:
        record_type, length = struct.unpack(
            ">BI", buffer[:RECORD_HEADER_LEN]
        )
        if len(buffer) < RECORD_HEADER_LEN + length:
            break
        payload = buffer[RECORD_HEADER_LEN : RECORD_HEADER_LEN + length]
        buffer = buffer[RECORD_HEADER_LEN + length :]
        records.append((record_type, payload))
    return records, buffer
