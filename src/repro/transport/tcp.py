"""The ``tcp-tls`` dialer: TLS-over-TCP HTTP/2 (with h1 fallback).

Wraps the concrete :mod:`repro.h2` stack behind the
:class:`~repro.transport.base.Dialer` interface.  The construction
sequence (TLS config first, per-call TLS 1.3 override, then the
session) is exactly the pre-refactor pool's, so an ``--alpn h2`` crawl
is byte-identical to one from before the session layer existed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.audit.log import NULL_AUDIT
from repro.h2.client import H2ClientSession
from repro.h2.tls_channel import TlsClientConfig
from repro.netsim.network import Host, Network
from repro.obs.phases import NULL_PHASES, observe_handshake
from repro.telemetry import NULL_TRACER
from repro.tlspki.ca import CertificateAuthority
from repro.tlspki.validation import TrustStore
from repro.transport.base import Dialer

#: The offer a plain-h2 browser sends; adding "h3" to it is how an
#: h3-capable client signals upgrade interest to TCP servers.
DEFAULT_ALPN_OFFER: Tuple[str, ...] = ("h2", "http/1.1")


class TcpTlsDialer(Dialer):
    """Creates :class:`~repro.h2.client.H2ClientSession` sessions."""

    name = "tcp-tls"
    alpn = "h2"

    def __init__(
        self,
        network: Network,
        client_host: Host,
        trust_store: TrustStore,
        authorities: Sequence[CertificateAuthority],
        tls13: bool = True,
        session_cache: Optional[dict] = None,
        alpn_offer: Tuple[str, ...] = DEFAULT_ALPN_OFFER,
        origin_aware: bool = True,
        port: int = 443,
        tracer=None,
        audit=None,
        page: str = "",
        phases=None,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.trust_store = trust_store
        self.authorities = authorities
        self.tls13 = tls13
        self.session_cache = session_cache
        self.alpn_offer = tuple(alpn_offer)
        self.origin_aware = origin_aware
        self.port = port
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.audit = audit if audit is not None else NULL_AUDIT
        self.page = page
        self.phases = phases if phases is not None else NULL_PHASES

    def tls_config(self, sni: str) -> TlsClientConfig:
        return TlsClientConfig(
            sni=sni,
            trust_store=self.trust_store,
            authorities=self.authorities,
            now=self.network.loop.now,
            tls13=self.tls13,
            alpn=self.alpn_offer,
            session_cache=self.session_cache,
            tracer=self.tracer if self.tracer.enabled else None,
            audit=self.audit if self.audit.enabled else None,
        )

    def dial(
        self, hostname: str, ip: str, tls13: Optional[bool] = None
    ) -> H2ClientSession:
        config = self.tls_config(hostname)
        if tls13 is not None:
            config.tls13 = tls13
        session = H2ClientSession(
            self.network,
            self.client_host,
            ip,
            config,
            port=self.port,
            origin_aware=self.origin_aware,
            tracer=self.tracer,
            audit=self.audit,
            page=self.page,
        )
        if self.phases.enabled:
            phases = self.phases
            session.when_ready(lambda: observe_handshake(phases, session))
        return session

    def plain_protocol(self, transport):
        """Cleartext HTTP/1.1 over an already-connected transport (no
        TLS); the engine's http:// path."""
        from repro.h2.http1 import H1ClientProtocol

        protocol = H1ClientProtocol(transport.send, self.network.loop.now)
        transport.on_data = protocol.on_app_data
        return protocol
