"""Deterministic QUIC-flavored transport (``quic`` dialer, h3).

Models the properties of QUIC that matter for connection coalescing
and handshake economics, on the same simulated event loop and record
framing as the TLS-over-TCP stack:

* **Combined handshake** -- transport setup and TLS ride the same
  flight, so a full handshake costs one round trip where TCP+TLS 1.3
  costs two (and TLS 1.2 three).
* **Cross-hostname session tickets** -- a ticket issued on one
  hostname resumes sessions to *any* hostname the issuing certificate
  covers, as Sy et al. measured for QUIC deployments; the client
  checks coverage before offering, the server re-checks on receipt.
* **0-RTT resumption** -- with a valid ticket the client treats the
  session as established immediately and its first request rides the
  first flight: zero round trips before application data.
* **Opacity** -- QUIC is encrypted from the first packet, so datagram
  flows bypass the network-tap interposers (the §6.7 middlebox cannot
  parse, and therefore cannot tear down, an h3 connection).

The HTTP layer is the same frame machinery as h2 (RFC 9114 keeps the
semantics; the framing difference is irrelevant to coalescing), so
:class:`QuicClientSession` reuses :class:`~repro.h2.client.
H2ClientSession` wholesale and only replaces the connection
establishment.  Ticket validation failures alert and fail the
connection; clients only offer tickets whose cached chain covers the
hostname, so this cannot happen in generated worlds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.h2.client import H2ClientSession
from repro.h2.server import ServerConnection
from repro.h2.tls_channel import (
    TlsChannel,
    deserialize_chain,
    serialize_chain,
)
from repro.netsim.network import Host, Network
from repro.netsim.transport import Transport
from repro.obs.phases import NULL_PHASES, observe_handshake
from repro.telemetry import NULL_TRACER
from repro.tlspki.ca import CertificateAuthority
from repro.tlspki.certificate import Certificate
from repro.tlspki.validation import TrustStore, validate_chain
from repro.transport.base import (
    DEFAULT_MAX_STREAMS,
    Dialer,
    SessionCapabilities,
)
from repro.transport.framing import (
    REC_ALERT,
    REC_APPDATA,
    REC_CERT,
    REC_FINISHED,
    REC_HELLO,
    REC_SHELLO,
    REC_TICKET,
    pack_record,
)


class QuicTicketManager:
    """Server-side QUIC session tickets.

    Unlike the TLS :class:`~repro.h2.tls_channel.TicketManager` (exact
    SNI match), a QUIC ticket resumes any hostname the issuing
    certificate covers -- the cross-hostname validity Sy et al.
    measured in deployed QUIC stacks.
    """

    def __init__(self) -> None:
        self._tickets: dict = {}
        self._counter = 0
        self.resumptions = 0
        self.cross_host_resumptions = 0

    def issue(self, sni: str, chain: Sequence[Certificate]) -> str:
        self._counter += 1
        ticket = f"quic-ticket-{self._counter:08d}"
        self._tickets[ticket] = (sni, list(chain))
        return ticket

    def validate(self, ticket: str, sni: str) -> bool:
        entry = self._tickets.get(ticket)
        if entry is None:
            return False
        issued_sni, chain = entry
        if not chain or not chain[0].covers(sni):
            return False
        self.resumptions += 1
        if issued_sni != sni:
            self.cross_host_resumptions += 1
        return True


@dataclass
class QuicClientConfig:
    """What a QUIC client needs; shaped like
    :class:`~repro.h2.tls_channel.TlsClientConfig` where the session
    machinery reads it (``sni``, ``now``, ``trust_store``,
    ``authorities``)."""

    sni: str
    trust_store: TrustStore
    authorities: Sequence[CertificateAuthority]
    now: Callable[[], float]
    alpn: Tuple[str, ...] = ("h3",)
    #: Shared per-browser-session ticket list; entries are dicts with
    #: ``ticket``, ``sni`` (issuing hostname), and ``chain`` keys.
    #: A list, not an SNI-keyed dict: one ticket serves every hostname
    #: its chain covers.
    ticket_cache: Optional[List[dict]] = None
    tracer: Optional[object] = None
    audit: Optional[object] = None


def find_ticket(cache: Optional[List[dict]],
                hostname: str) -> Optional[dict]:
    """The cached ticket to offer for ``hostname``: an exact-SNI match
    first, else the first whose certificate covers the hostname."""
    if not cache:
        return None
    covering = None
    for entry in cache:
        chain = entry.get("chain") or []
        if not chain or not chain[0].covers(hostname):
            continue
        if entry.get("sni") == hostname:
            return entry
        if covering is None:
            covering = entry
    return covering


class QuicClientChannel(TlsChannel):
    """Client side of the combined transport+TLS handshake."""

    def __init__(self, transport: Transport, config: QuicClientConfig,
                 schedule: Callable[[float, Callable[[], None]], None],
                 ) -> None:
        super().__init__(transport)
        self.config = config
        self._schedule = schedule
        self.server_chain: List[Certificate] = []
        self.resumed = False
        self.cross_host = False
        self.ticket_sni = ""
        self.tracer = config.tracer if config.tracer is not None \
            else NULL_TRACER
        self._handshake_span = None

    def start(self) -> None:
        if self.tracer.enabled:
            self._handshake_span = self.tracer.begin(
                "quic.handshake", category="quic", sni=self.config.sni,
            )
        hello = {"sni": self.config.sni, "alpn": list(self.config.alpn)}
        entry = find_ticket(self.config.ticket_cache, self.config.sni)
        if entry is not None:
            hello["ticket"] = entry["ticket"]
        # The Initial is encrypted; an on-path observer sees no SNI.
        self.observed_sni = ""
        self.transport.send(
            pack_record(REC_HELLO, json.dumps(hello).encode("utf-8"))
        )
        if entry is not None:
            # 0-RTT: the cached chain is this session's authority and
            # the first request rides the same flight as the hello.
            # Established on the next loop turn (not synchronously) so
            # callers observe the same call ordering as every other
            # transport's connect.
            self.resumed = True
            self.cross_host = entry["sni"] != self.config.sni
            self.ticket_sni = entry["sni"]
            self.server_chain = list(entry["chain"])
            self.negotiated_alpn = self.config.alpn[0]
            self._schedule(0.0, self._establish)

    def _on_record(self, record_type: int, payload: bytes) -> None:
        if record_type == REC_SHELLO:
            hello = json.loads(payload.decode("utf-8"))
            if not self.resumed:
                self.negotiated_alpn = hello.get("alpn")
        elif record_type == REC_CERT:
            self.server_chain = deserialize_chain(payload)
            result = validate_chain(
                self.server_chain,
                self.config.sni,
                self.config.now(),
                self.config.trust_store,
                self.config.authorities,
            )
            if not result.ok:
                self._fail("; ".join(result.errors))
                return
            self.transport.send(pack_record(REC_FINISHED, b""))
            self._establish()
        elif record_type == REC_FINISHED:
            # Server Finished; with ``b"resumed"`` it confirms the
            # ticket our 0-RTT path already acted on.
            pass
        elif record_type == REC_TICKET:
            cache = self.config.ticket_cache
            if cache is not None and self.server_chain:
                cache.append({
                    "ticket": payload.decode("ascii"),
                    "sni": self.config.sni,
                    "chain": list(self.server_chain),
                })
        elif record_type == REC_ALERT:
            self._end_handshake_span(
                ok=False, error=payload.decode("utf-8", "replace")
            )
            if self.on_failed is not None:
                self.on_failed(payload.decode("utf-8", "replace"))
            self.close()
        elif record_type == REC_APPDATA:
            if self.on_app_data is not None:
                self.on_app_data(payload)

    def _fail(self, reason: str) -> None:
        self._end_handshake_span(ok=False, error=reason)
        super()._fail(reason)

    def _end_handshake_span(self, **attrs) -> None:
        span = self._handshake_span
        if span is not None and not span.finished:
            self.tracer.end(span, **attrs)

    def _establish(self) -> None:
        if self.established:
            return
        self.established = True
        self._end_handshake_span(
            ok=True, resumed=self.resumed, cross_host=self.cross_host,
            alpn=self.negotiated_alpn,
        )
        if self.on_established is not None:
            self.on_established()


class QuicServerChannel(TlsChannel):
    """Server side: one flight answers the hello (SHELLO + CERT +
    FINISHED together), or confirms a resumed ticket."""

    def __init__(
        self,
        transport: Transport,
        chain_selector: Callable[[str], Optional[Sequence[Certificate]]],
        supported_alpn: Tuple[str, ...] = ("h3",),
        ticket_manager: Optional[QuicTicketManager] = None,
    ) -> None:
        super().__init__(transport)
        self._chain_selector = chain_selector
        self.supported_alpn = supported_alpn
        self.ticket_manager = ticket_manager
        self.client_sni = ""
        self.negotiated_alpn = None
        self.resumed = False
        self.client_offered_alpn: Tuple[str, ...] = ()

    def _on_record(self, record_type: int, payload: bytes) -> None:
        if record_type == REC_HELLO:
            hello = json.loads(payload.decode("utf-8"))
            self.client_sni = hello.get("sni", "")
            offered = hello.get("alpn") or []
            self.client_offered_alpn = tuple(offered)
            supported = self.supported_alpn
            if callable(supported):
                supported = supported(self.client_sni)
            self.negotiated_alpn = next(
                (p for p in supported if p in offered), None
            )
            if self.negotiated_alpn is None:
                self._fail(
                    f"no common ALPN protocol (offered {offered}, "
                    f"supported {list(supported)})"
                )
                return
            chain = self._chain_selector(self.client_sni)
            if chain is None:
                self._fail(f"no certificate for {self.client_sni!r}")
                return
            self.transport.send(
                pack_record(
                    REC_SHELLO,
                    json.dumps({"alpn": self.negotiated_alpn}).encode(),
                )
            )
            ticket = hello.get("ticket")
            if (
                ticket
                and self.ticket_manager is not None
                and self.ticket_manager.validate(ticket, self.client_sni)
            ):
                # Accepted 0-RTT: confirm and process early data.
                self.resumed = True
                self.transport.send(
                    pack_record(REC_FINISHED, b"resumed")
                )
                self._establish(chain)
                return
            if ticket:
                # An unacceptable ticket fails the connection: the
                # client already treated itself as established and sent
                # early data under the wrong authority.  (Clients check
                # coverage before offering, so only a certificate
                # rotation mid-session could land here.)
                self._fail("0-RTT ticket rejected")
                return
            # Full handshake: the whole server flight in one RTT.
            self.transport.send(
                pack_record(REC_CERT, serialize_chain(chain))
            )
            self.transport.send(pack_record(REC_FINISHED, b""))
            self._establish(chain)
        elif record_type == REC_FINISHED:
            pass  # client Finished; already established
        elif record_type == REC_ALERT:
            if self.on_failed is not None:
                self.on_failed(payload.decode("utf-8", "replace"))
            self.close()
        elif record_type == REC_APPDATA:
            if self.on_app_data is not None:
                self.on_app_data(payload)

    def _establish(self, chain: Sequence[Certificate]) -> None:
        if self.established:
            return
        self.established = True
        if self.ticket_manager is not None:
            self.transport.send(
                pack_record(
                    REC_TICKET,
                    self.ticket_manager.issue(
                        self.client_sni, chain
                    ).encode(),
                )
            )
        if self.on_established is not None:
            self.on_established()


class QuicClientSession(H2ClientSession):
    """One h3 client connection; everything above the handshake is the
    h2 session machinery (same streams, ORIGIN frames, 421 handling)."""

    def __init__(
        self,
        network: Network,
        client_host: Host,
        server_ip: str,
        quic_config: QuicClientConfig,
        port: int = 443,
        origin_aware: bool = True,
        tracer=None,
        audit=None,
        page: str = "",
        metrics=None,
    ) -> None:
        super().__init__(
            network, client_host, server_ip, quic_config, port=port,
            origin_aware=origin_aware, tracer=tracer, audit=audit,
            page=page,
        )
        #: Metrics registry for the quic.* counters; created lazily so
        #: h2-only crawls export exactly the metric series they always
        #: did.  ``None`` disables.
        self.metrics = metrics

    @property
    def capabilities(self) -> SessionCapabilities:
        return SessionCapabilities(
            alpn="h3",
            resumable_across_hostnames=True,
            zero_rtt=True,
            supports_origin_frame=self.origin_aware,
            max_streams=DEFAULT_MAX_STREAMS,
        )

    def connect(
        self,
        on_ready: Optional[Callable[[], None]] = None,
        on_failed: Optional[Callable[[str], None]] = None,
    ) -> None:
        if on_ready is not None:
            self._on_ready.append(on_ready)
        if on_failed is not None:
            self._on_failed.append(on_failed)
        now = self.network.loop.now
        self.connect_started_at = now()
        if self.tracer.enabled and self._conn_span is None:
            self._conn_span = self.tracer.begin(
                "quic.connection", category="quic",
                sni=self.tls_config.sni, ip=self.server_ip,
            )
        transport = self.network.connect_datagram(
            self.client_host,
            self.server_ip,
            self.port,
            on_refused=lambda error: self._fail(str(error)),
        )
        if transport is None:
            return
        # No transport handshake: the cryptographic handshake is the
        # only pre-request round trip (HAR "connect" is 0).
        self.tcp_connected_at = now()
        self.channel = QuicClientChannel(
            transport, self.tls_config, self.network.loop.schedule
        )
        self.channel.on_established = self._on_quic_established
        self.channel.on_failed = self._fail
        self.channel.on_app_data = self._on_app_data
        transport.on_close = self._on_transport_closed
        self.channel.start()

    def _on_quic_established(self) -> None:
        channel = self.channel
        if self.audit.enabled:
            if channel.resumed:
                self.audit.record(
                    "quic", ReasonCode.ZERO_RTT_RESUMED,
                    page=self.page, hostname=self.tls_config.sni,
                    cross_host=channel.cross_host,
                )
                if channel.cross_host:
                    self.audit.record(
                        "quic", ReasonCode.CROSS_HOST_TICKET,
                        page=self.page, hostname=self.tls_config.sni,
                        ticket_sni=channel.ticket_sni,
                    )
            else:
                self.audit.record(
                    "quic", ReasonCode.QUIC_HANDSHAKE_1RTT,
                    page=self.page, hostname=self.tls_config.sni,
                )
        if self.metrics is not None:
            # Round trips saved before the first request, against the
            # TCP+TLS1.3 floor of two (connect + handshake).
            if channel.resumed:
                self.metrics.counter("quic.zero_rtt_resumptions").inc()
                if channel.cross_host:
                    self.metrics.counter(
                        "quic.cross_host_resumptions"
                    ).inc()
                self.metrics.counter("quic.handshake_rtts_saved").inc(2)
            else:
                self.metrics.counter("quic.handshakes_1rtt").inc()
                self.metrics.counter("quic.handshake_rtts_saved").inc(1)
        self._on_tls_established()


class QuicServerConnection(ServerConnection):
    """Server-side state for one accepted QUIC flow; request handling
    is inherited from the TCP server connection unchanged."""

    #: h3 responses never advertise Alt-Svc (the client is already
    #: where Alt-Svc would point it).
    alt_svc_eligible = False

    def __init__(self, server, transport: Transport) -> None:
        # Mirrors ServerConnection.__init__ with a QUIC channel; the
        # base constructor is not called because it hard-wires a
        # TlsServerChannel.
        self.server = server
        self.channel = QuicServerChannel(
            transport,
            server.config.chain_for_sni,
            supported_alpn=("h3",),
            ticket_manager=server.quic_ticket_manager,
        )
        self.conn = None
        self.h1 = None
        self.sni = ""
        self.protocol = ""
        self.channel.on_established = self._on_tls_established
        self.channel.on_app_data = self._on_app_data
        self.request_log = []


class QuicDialer(Dialer):
    """Creates :class:`QuicClientSession` sessions (h3 over the
    simulated datagram network)."""

    name = "quic"
    alpn = "h3"

    def __init__(
        self,
        network: Network,
        client_host: Host,
        trust_store: TrustStore,
        authorities: Sequence[CertificateAuthority],
        ticket_cache: Optional[List[dict]] = None,
        origin_aware: bool = True,
        port: int = 443,
        tracer=None,
        audit=None,
        page: str = "",
        metrics=None,
        phases=None,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.trust_store = trust_store
        self.authorities = authorities
        self.ticket_cache = ticket_cache if ticket_cache is not None \
            else []
        self.origin_aware = origin_aware
        self.port = port
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.audit = audit if audit is not None else NULL_AUDIT
        self.page = page
        self.metrics = metrics
        self.phases = phases if phases is not None else NULL_PHASES

    def config(self, sni: str) -> QuicClientConfig:
        return QuicClientConfig(
            sni=sni,
            trust_store=self.trust_store,
            authorities=self.authorities,
            now=self.network.loop.now,
            ticket_cache=self.ticket_cache,
            tracer=self.tracer if self.tracer.enabled else None,
            audit=self.audit if self.audit.enabled else None,
        )

    def has_ticket_for(self, hostname: str) -> bool:
        """Whether a cached ticket's certificate covers ``hostname``
        (the cross-host 0-RTT opportunity)."""
        return find_ticket(self.ticket_cache, hostname) is not None

    def dial(
        self, hostname: str, ip: str, tls13: Optional[bool] = None
    ) -> QuicClientSession:
        # ``tls13`` is accepted for interface parity and ignored: QUIC
        # is TLS 1.3 only.
        session = QuicClientSession(
            self.network,
            self.client_host,
            ip,
            self.config(hostname),
            port=self.port,
            origin_aware=self.origin_aware,
            tracer=self.tracer,
            audit=self.audit,
            page=self.page,
            metrics=self.metrics,
        )
        if self.phases.enabled:
            phases = self.phases
            session.when_ready(lambda: observe_handshake(phases, session))
        return session
