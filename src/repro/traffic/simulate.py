"""Population-scale traffic simulation.

One shard simulates its slice of the user population against a full
replica of the synthetic CDN: every user is a persistent browser
profile (own resource cache, DNS cache, and TLS-ticket jar, so
revisits arrive warm), every visit is a real page load on the shared
simulated clock, and every edge event streams into a
:class:`~repro.traffic.aggregate.TrafficAggregate` the moment it
happens -- archives are folded and dropped, never retained.

Shards merge in shard order, so ``run_scenario(jobs=4)`` is
byte-identical to ``jobs=1``; the shard *layout* is part of the
experiment definition, exactly like the crawl's.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.audit.log import AuditEvent
from repro.browser import BrowserContext, BrowserEngine
from repro.browser.policy import policy_by_name
from repro.dataset.shard import ShardResult, _mp_context
from repro.dataset.world import CDN_REGION, TAIL_REGION, build_world
from repro.deployment.experiment import deployment_world_config
from repro.netsim import Host, LinkSpec
from repro.obs.phases import PhaseRecorder
from repro.telemetry import CrawlTrace, Span, Telemetry
from repro.traffic.aggregate import TrafficAggregate
from repro.traffic.edge import EdgeLoadMonitor, apply_edge_capacity
from repro.traffic.population import UserProfile, build_population
from repro.traffic.scenario import (
    ScenarioConfig,
    UserShard,
    WHAT_IF_POLICIES,
    plan_user_shards,
    scenario_for_policy,
)

#: Per-user DNS latency knob (matches the crawl's default resolver).
DNS_LATENCY_MS = 48.0


def deploy_fleet_origin(world, now: float = 0.0) -> int:
    """Best-case fleet-wide ORIGIN deployment.

    The §5 :class:`DeploymentExperiment` enrolls a small sample behind
    one provider -- right for measuring a marginal rollout, far too
    small to move population-scale edge load.  The what-if sweep wants
    the paper's *upper bound* instead: every provider edge advertises
    the popular hostnames it co-hosts in ORIGIN frames, and every
    certificate it serves -- provider-hosted site certs and the popular
    hostnames' own certs alike -- is reissued to cover them.  Any
    client connection to such an edge can then coalesce the co-hosted
    third parties (and the third parties each other).

    Certificates with an empty SAN identify exactly one name under
    legacy CN matching and can never coalesce; they are left alone.
    Returns the number of certificates reissued.
    """
    by_provider: Dict[str, List[str]] = {}
    for hostname, provider in world.popular_hostnames.items():
        by_provider.setdefault(provider, []).append(hostname)
    # ``Certificate.issuer`` is normalized (lowercased); the world's
    # issuer registry keys on display names.
    issuers_by_name = {
        name.lower(): authority
        for name, authority in world.issuers.items()
    }
    reissued = 0
    for provider in sorted(by_provider):
        server = world.provider_servers.get(provider)
        if server is None:
            continue
        popular = sorted(by_provider[provider])
        origin_set = tuple(f"https://{name}" for name in popular)
        config = server.config
        config.send_origin_frames = True
        # The popular hostnames' own chains grow to cover the
        # provider's whole popular set, so third parties coalesce with
        # each other on one connection.
        for index, chain in enumerate(config.chains):
            leaf = chain[0] if chain else None
            if leaf is None or not leaf.san:
                continue
            if world.popular_hostnames.get(leaf.subject) != provider:
                continue
            issuer = issuers_by_name.get(leaf.issuer)
            if issuer is None:
                continue
            missing = tuple(
                name for name in popular if not leaf.covers(name)
            )
            if missing:
                renewed = issuer.reissue(leaf, added_san=missing, now=now)
                config.chains[index] = issuer.chain_for(renewed)
                reissued += 1
            config.origin_sets[leaf.subject] = origin_set
    # Provider-hosted sites: each site certificate grows to cover its
    # provider's popular set, and the edge advertises that set for the
    # site's own names.
    for hosted in world.sites:
        record = hosted.record
        if record.self_hosted:
            continue
        popular = sorted(by_provider.get(record.provider, ()))
        if not popular:
            continue
        old = hosted.certificate
        if not old.san:
            continue
        issuer = world.issuers.get(record.issuer)
        if issuer is None:
            continue
        origin_set = tuple(f"https://{name}" for name in popular)
        missing = tuple(
            name for name in popular if not old.covers(name)
        )
        config = hosted.server.config
        if missing:
            renewed = issuer.reissue(old, added_san=missing, now=now)
            for index, chain in enumerate(config.chains):
                if chain and chain[0].serial == old.serial \
                        and chain[0].subject == old.subject:
                    config.chains[index] = issuer.chain_for(renewed)
                    break
            else:
                config.chains.append(issuer.chain_for(renewed))
            hosted.certificate = renewed
            reissued += 1
        config.send_origin_frames = True
        for hostname in record.own_hostnames():
            config.origin_sets[hostname] = origin_set
    return reissued


def _build_traffic_world(scenario: ScenarioConfig):
    """A full world replica for one shard, with the scenario's
    deployment switches applied before any traffic flows."""
    world = build_world(deployment_world_config(
        site_count=scenario.site_count, seed=scenario.seed,
    ))
    if scenario.deployment == "origin":
        deploy_fleet_origin(world)
    return world


def _user_host(world, user_id: int) -> Host:
    """A dedicated access link per user.

    The crawl shares one client host whose region-wide ingress queue
    models one browser's access link; a population must not funnel
    every user through that single queue, so each user gets an own
    region with the same link characteristics and an own shared-ingress
    bottleneck (the user's parallel connections still contend with
    each other, not with the neighbours')."""
    region = f"user-{user_id}"
    latency = world.network.latency
    latency.set_link(region, CDN_REGION,
                     LinkSpec(rtt_ms=24.0, bandwidth_bpms=2500.0))
    latency.set_link(region, TAIL_REGION,
                     LinkSpec(rtt_ms=110.0, bandwidth_bpms=2000.0))
    latency.enable_shared_ingress(region, 2800.0)
    return world.network.add_host(
        Host(region, region, world.allocator.allocate(1))
    )


def _user_engine(
    world, profile: UserProfile, scenario: ScenarioConfig,
    policies: Dict[str, object], telemetry: Telemetry,
) -> BrowserEngine:
    """One persistent browser profile.  No RNG: speculative races and
    TLS 1.2 fallback are disabled, so a user's behaviour is a pure
    function of the schedule -- concurrency cannot reorder draws."""
    cohort = profile.cohort
    resolver = world.make_resolver(median_latency_ms=DNS_LATENCY_MS)
    # Phase latencies are keyed per cohort x policy; recorders over
    # the shared registry dedupe onto the same histograms, so this
    # costs one small object per user.
    phases = PhaseRecorder(telemetry.metrics,
                           policy=cohort.policy, cohort=cohort.name)
    resolver.phases = phases
    context = BrowserContext(
        network=world.network,
        client_host=_user_host(world, profile.user_id),
        resolver=resolver,
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=policies[cohort.policy],
        rng=None,
        speculative_rate=0.0,
        tls12_rate=0.0,
        asdb=world.asdb,
        cache_enabled=cohort.cache_enabled,
        user_agent=cohort.user_agent,
        tls_session_cache={},
        telemetry=telemetry,
        alpn=("h2",),
        goaway_retry_limit=scenario.goaway_retry_limit,
        goaway_retry_backoff_ms=scenario.goaway_retry_backoff_ms,
        phases=phases,
    )
    return BrowserEngine(context)


def simulate_shard(
    shard: UserShard, audit: bool = True, trace: bool = False,
) -> ShardResult:
    """Simulate one user-population shard.

    Returns a :class:`~repro.dataset.shard.ShardResult` whose payload
    is the shard's :class:`TrafficAggregate`, bundled with its audit
    events (empty when ``audit`` is off; decisions are still audited
    internally so retry accounting never depends on the flag), its
    spans (empty unless ``trace``), and its metrics snapshot (phase
    histograms and any traced counters).  ``extra`` is the edge
    monitor, whose sampled passive records are useful in-process; they
    are not merged across worker boundaries.
    """
    scenario = shard.scenario
    world = _build_traffic_world(scenario)
    apply_edge_capacity(world, shard.edge_capacity())
    loop = world.network.loop

    aggregate = TrafficAggregate(
        users=shard.user_count,
        duration_ms=scenario.duration_ms,
        bucket_ms=scenario.bucket_ms,
        shard_count=shard.shard_count,
    )
    telemetry = Telemetry(clock=loop.now, trace=trace, audit=True)
    monitor = EdgeLoadMonitor(
        world, aggregate,
        sample_rate=scenario.passive_sample_rate,
        sampling_seed=shard.sampling_seed(),
        audit=telemetry.audit,
    )
    monitor.attach()

    policies = {
        cohort.policy: policy_by_name(cohort.policy)
        for cohort in scenario.cohorts
    }
    profiles, schedule = build_population(shard)
    engines: Dict[int, BrowserEngine] = {}
    for user_id in sorted(profiles):
        profile = profiles[user_id]
        aggregate.cohort_for(profile.cohort.name).users += 1
        engines[user_id] = _user_engine(
            world, profile, scenario, policies, telemetry
        )

    def start_visit(profile: UserProfile, visit) -> None:
        tally = aggregate.cohort_for(profile.cohort.name)
        tally.visits += 1
        if visit.visit_seq > 0:
            tally.revisits += 1
        hosted = world.sites[visit.site_index]
        if not hosted.record.accessible:
            tally.inaccessible += 1
            return
        engine = engines[visit.user_id]

        def on_complete(archive) -> None:
            tally.requests += len(archive.entries)
            tally.cached_responses += sum(
                1 for entry in archive.entries
                if entry.protocol == "cache"
            )
            if archive.page.success:
                tally.completed += 1
                tally.plt_total_ms += archive.page.on_load
            else:
                tally.failed += 1
            # Bounded memory: finished loads (and their archives) are
            # dropped immediately; only the fold above survives.
            engine.loads[:] = [
                load for load in engine.loads if not load.finished
            ]

        engine.load(hosted.record.page, on_complete)

    for visit in schedule:
        profile = profiles[visit.user_id]
        loop.schedule_at(
            visit.at_ms,
            lambda profile=profile, visit=visit:
                start_visit(profile, visit),
        )
    loop.run_until_idle()
    monitor.detach()

    for user_id in sorted(engines):
        resolver = engines[user_id].context.resolver
        aggregate.dns_queries += resolver.stats.queries
    events = telemetry.audit.events
    aggregate.retries = sum(
        1 for event in events if event.kind == "retry"
    )
    for name in sorted(aggregate.edges):
        aggregate.totals.merge(aggregate.edges[name])
    # Per-edge peaks sum replica-style in ``merge``; the fleet total is
    # the true all-edge gauge peak, not the sum of per-edge peaks.
    aggregate.totals.peak_concurrent = monitor.peak_connections
    return ShardResult(
        payload=aggregate,
        spans=(telemetry.tracer.spans if trace else []),
        metrics=telemetry.metrics.snapshot(),
        events=(events if audit else []),
        extra=monitor,
    )


def _simulate_shard_json(
    payload: Tuple[UserShard, bool, bool]
) -> Tuple[dict, List[dict], List[dict], List[dict]]:
    """Picklable worker entry point: everything as JSON-able docs."""
    shard, audit, trace = payload
    shard_result = simulate_shard(shard, audit=audit, trace=trace)
    return (
        shard_result.payload.to_dict(),
        [event.to_dict() for event in shard_result.events],
        [span.to_dict() for span in shard_result.spans],
        shard_result.metrics,
    )


def run_scenario(
    scenario: ScenarioConfig,
    shard_count: Optional[int] = None,
    jobs: int = 1,
    audit: bool = True,
    trace: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    watch: Optional[Callable[[int, int, CrawlTrace], None]] = None,
) -> Tuple[TrafficAggregate, CrawlTrace]:
    """Run a scenario over its shard plan, merging in shard order.

    Every shard's aggregate round-trips through its worker
    serialization even in-process, so ``jobs`` never changes a byte
    (the round-trip is where per-shard floats get their canonical
    rounding).  ``watch`` (if given) sees the merged-so-far trace
    after each shard -- the run ledger's heartbeat hook.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    shards = plan_user_shards(scenario, shard_count)
    total = len(shards)
    merged = TrafficAggregate(
        duration_ms=scenario.duration_ms,
        bucket_ms=scenario.bucket_ms,
        shard_count=total,
    )
    crawl_trace = CrawlTrace()

    def adopt(done: int, shard_index: int, doc, event_docs,
              span_docs, metrics) -> None:
        merged.merge(TrafficAggregate.from_dict(doc))
        crawl_trace.extend(
            [Span.from_dict(d) for d in span_docs], shard=shard_index
        )
        crawl_trace.extend_audit(
            [AuditEvent.from_dict(d) for d in event_docs],
            shard=shard_index,
        )
        crawl_trace.metrics.absorb(metrics)
        if progress is not None:
            progress(done, total)
        if watch is not None:
            watch(done, total, crawl_trace)

    if jobs == 1 or total == 1:
        for done, shard in enumerate(shards, start=1):
            doc, event_docs, span_docs, metrics = _simulate_shard_json(
                (shard, audit, trace)
            )
            adopt(done, shard.index, doc, event_docs, span_docs, metrics)
        return merged, crawl_trace
    payloads = [(shard, audit, trace) for shard in shards]
    workers = min(jobs, total)
    with _mp_context().Pool(processes=workers) as pool:
        # imap preserves shard order while letting shards finish out
        # of order in the workers.
        for done, (doc, event_docs, span_docs, metrics) in enumerate(
            pool.imap(_simulate_shard_json, payloads), start=1
        ):
            adopt(done, shards[done - 1].index, doc, event_docs,
                  span_docs, metrics)
    return merged, crawl_trace


def run_what_if(
    base: ScenarioConfig,
    shard_count: Optional[int] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str, int, int], None]] = None,
) -> List[Tuple[str, TrafficAggregate]]:
    """The what-if sweep: the same population and world under each
    named policy mix (baseline browsers, ORIGIN deployment, ideal
    SAN coverage)."""
    results: List[Tuple[str, TrafficAggregate]] = []
    for policy in WHAT_IF_POLICIES:
        scenario = scenario_for_policy(base, policy)
        shard_progress = None
        if progress is not None:
            shard_progress = (
                lambda done, total, policy=policy:
                    progress(policy, done, total)
            )
        aggregate, _ = run_scenario(
            scenario, shard_count=shard_count, jobs=jobs,
            audit=False, progress=shard_progress,
        )
        results.append((policy, aggregate))
    return results


def what_if_rows(
    results: List[Tuple[str, TrafficAggregate]]
) -> Tuple[List[str], List[List[str]]]:
    """Render-ready what-if comparison (headers, rows)."""
    headers = [
        "scenario", "edge conns", "handshakes", "resumed",
        "coalesced", "goaways", "retries", "failed", "mean PLT ms",
    ]
    rows: List[List[str]] = []
    for policy, aggregate in results:
        totals = aggregate.totals
        completed = aggregate.completed
        plt = (
            sum(t.plt_total_ms for t in aggregate.cohorts.values())
            / completed if completed else 0.0
        )
        rows.append([
            policy,
            str(totals.connections),
            str(totals.handshakes),
            f"{totals.resumption_rate:.1%}",
            f"{totals.coalesced_share:.1%}",
            str(totals.goaways),
            str(aggregate.retries),
            str(aggregate.failed),
            f"{plt:.1f}",
        ])
    return headers, rows
