"""Streaming, shard-mergeable traffic aggregation.

A population run never retains HAR archives or per-request records:
every finished visit and every edge event is folded into a
:class:`TrafficAggregate` immediately, so memory stays bounded by the
number of edges, cohorts, and time buckets -- not by the number of
users or requests.  Aggregates from different shards merge by
addition (peaks sum too: each shard is a replica of the edge fleet
serving its own user slice), and the canonical JSONL export is
byte-identical whatever ``--jobs`` count produced the shards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple


@dataclass
class LoadCounters:
    """Edge-side load counters for one edge group or time bucket."""

    connections: int = 0
    handshakes: int = 0
    resumed: int = 0
    requests: int = 0
    coalesced_requests: int = 0
    goaways: int = 0
    peak_concurrent: int = 0

    def merge(self, other: "LoadCounters") -> None:
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self)}

    @classmethod
    def from_dict(cls, doc: dict) -> "LoadCounters":
        return cls(**{spec.name: int(doc.get(spec.name, 0))
                      for spec in fields(cls)})

    @property
    def coalesced_share(self) -> float:
        return (self.coalesced_requests / self.requests
                if self.requests else 0.0)

    @property
    def resumption_rate(self) -> float:
        return self.resumed / self.handshakes if self.handshakes else 0.0


@dataclass
class CohortTally:
    """Client-side outcomes for one user cohort."""

    users: int = 0
    visits: int = 0
    revisits: int = 0
    completed: int = 0
    failed: int = 0
    inaccessible: int = 0
    requests: int = 0
    cached_responses: int = 0
    plt_total_ms: float = 0.0

    def merge(self, other: "CohortTally") -> None:
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def to_dict(self) -> dict:
        doc = {spec.name: getattr(self, spec.name)
               for spec in fields(self)}
        doc["plt_total_ms"] = round(self.plt_total_ms, 6)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CohortTally":
        values = {spec.name: doc.get(spec.name, 0)
                  for spec in fields(cls)}
        values["plt_total_ms"] = float(values["plt_total_ms"])
        return cls(**{name: (value if name == "plt_total_ms"
                             else int(value))
                      for name, value in values.items()})

    @property
    def mean_plt_ms(self) -> float:
        return self.plt_total_ms / self.completed if self.completed else 0.0


@dataclass
class TrafficAggregate:
    """The complete, mergeable result of a traffic scenario run."""

    users: int = 0
    duration_ms: float = 0.0
    bucket_ms: float = 5000.0
    shard_count: int = 1
    dns_queries: int = 0
    retries: int = 0
    totals: LoadCounters = field(default_factory=LoadCounters)
    edges: Dict[str, LoadCounters] = field(default_factory=dict)
    buckets: Dict[int, LoadCounters] = field(default_factory=dict)
    cohorts: Dict[str, CohortTally] = field(default_factory=dict)

    # -- streaming entry points (used by the monitor/runner) ---------------

    def bucket_for(self, at_ms: float) -> LoadCounters:
        index = int(at_ms // self.bucket_ms)
        bucket = self.buckets.get(index)
        if bucket is None:
            bucket = self.buckets[index] = LoadCounters()
        return bucket

    def edge_for(self, name: str) -> LoadCounters:
        edge = self.edges.get(name)
        if edge is None:
            edge = self.edges[name] = LoadCounters()
        return edge

    def cohort_for(self, name: str) -> CohortTally:
        tally = self.cohorts.get(name)
        if tally is None:
            tally = self.cohorts[name] = CohortTally()
        return tally

    # -- merging -----------------------------------------------------------

    def merge(self, other: "TrafficAggregate") -> None:
        """Fold another shard's aggregate in (addition everywhere;
        always call in shard order so float sums associate the same
        way regardless of worker count)."""
        self.users += other.users
        self.duration_ms = max(self.duration_ms, other.duration_ms)
        self.dns_queries += other.dns_queries
        self.retries += other.retries
        self.totals.merge(other.totals)
        for name, counters in other.edges.items():
            self.edge_for(name).merge(counters)
        for index, counters in other.buckets.items():
            bucket = self.buckets.get(index)
            if bucket is None:
                bucket = self.buckets[index] = LoadCounters()
            bucket.merge(counters)
        for name, tally in other.cohorts.items():
            self.cohort_for(name).merge(tally)

    # -- analysis ----------------------------------------------------------

    def coalesced_share_series(self) -> List[Tuple[float, float, int]]:
        """Figure 8-style ``(bucket_start_ms, share, requests)`` rows."""
        return [
            (index * self.bucket_ms, counters.coalesced_share,
             counters.requests)
            for index, counters in sorted(self.buckets.items())
            if counters.requests
        ]

    @property
    def visits(self) -> int:
        return sum(t.visits for t in self.cohorts.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.cohorts.values())

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.cohorts.values())

    # -- canonical export --------------------------------------------------

    def to_jsonl(self) -> str:
        """Canonical JSONL: fixed section order, sorted names/indexes,
        sorted keys, compact separators -- byte-identical across
        ``--jobs`` for identical merged content."""
        lines: List[dict] = [{
            "kind": "meta",
            "users": self.users,
            "duration_ms": round(self.duration_ms, 6),
            "bucket_ms": round(self.bucket_ms, 6),
            "shards": self.shard_count,
            "dns_queries": self.dns_queries,
            "retries": self.retries,
        }]
        lines.append({"kind": "totals", **self.totals.to_dict()})
        for name in sorted(self.cohorts):
            lines.append({"kind": "cohort", "name": name,
                          **self.cohorts[name].to_dict()})
        for name in sorted(self.edges):
            lines.append({"kind": "edge", "name": name,
                          **self.edges[name].to_dict()})
        for index in sorted(self.buckets):
            lines.append({"kind": "bucket", "index": index,
                          **self.buckets[index].to_dict()})
        return "\n".join(
            json.dumps(doc, sort_keys=True, separators=(",", ":"))
            for doc in lines
        ) + "\n"

    # -- worker serialization ----------------------------------------------

    def to_dict(self) -> dict:
        return {
            "users": self.users,
            "duration_ms": self.duration_ms,
            "bucket_ms": self.bucket_ms,
            "shard_count": self.shard_count,
            "dns_queries": self.dns_queries,
            "retries": self.retries,
            "totals": self.totals.to_dict(),
            "edges": {name: c.to_dict()
                      for name, c in self.edges.items()},
            "buckets": {str(index): c.to_dict()
                        for index, c in self.buckets.items()},
            "cohorts": {name: t.to_dict()
                        for name, t in self.cohorts.items()},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TrafficAggregate":
        aggregate = cls(
            users=int(doc["users"]),
            duration_ms=float(doc["duration_ms"]),
            bucket_ms=float(doc["bucket_ms"]),
            shard_count=int(doc.get("shard_count", 1)),
            dns_queries=int(doc.get("dns_queries", 0)),
            retries=int(doc.get("retries", 0)),
            totals=LoadCounters.from_dict(doc["totals"]),
        )
        aggregate.edges = {
            name: LoadCounters.from_dict(sub)
            for name, sub in doc["edges"].items()
        }
        aggregate.buckets = {
            int(index): LoadCounters.from_dict(sub)
            for index, sub in doc["buckets"].items()
        }
        aggregate.cohorts = {
            name: CohortTally.from_dict(sub)
            for name, sub in doc["cohorts"].items()
        }
        return aggregate
