"""Edge-side load accounting.

The :class:`EdgeLoadMonitor` hangs off the two server hooks --
``connection_observer`` (accept / handshake / overload-GOAWAY / close)
and ``request_observer`` (per-request, with the ``SNI != Host``
coalescing signal of §5.2) -- across every TLS edge in a world, and
folds everything into a streaming :class:`~repro.traffic.aggregate.
TrafficAggregate`: concurrent-connection gauges, handshakes split by
resumption, coalesced-request counters per time bucket (the Figure 8
series at population scale), and per-edge-group breakdowns.

A seeded sample of requests is additionally retained as
:class:`~repro.deployment.passive.LogRecord` rows, so the §5 passive
pipeline's analysis helpers work unchanged on traffic runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.audit.log import NULL_AUDIT
from repro.audit.reasons import ReasonCode
from repro.dataset.world import SyntheticWorld
from repro.deployment.passive import LogRecord
from repro.h2.server import H2Server
from repro.traffic.aggregate import TrafficAggregate

#: Logical edge-group name for servers that are not part of a CDN
#: fleet (self-hosted origin servers); keeps the per-edge breakdown
#: bounded however many sites the world has.
SELF_HOSTED = "self-hosted"


def edge_groups(world: SyntheticWorld) -> List[Tuple[str, H2Server]]:
    """Every TLS server in the world with its edge-group name, in a
    deterministic order (providers by name, tail CDNs by ASN,
    self-hosted origins last)."""
    groups: List[Tuple[str, H2Server]] = []
    seen = set()
    for name in sorted(world.provider_servers):
        server = world.provider_servers[name]
        groups.append((f"provider:{name}", server))
        seen.add(id(server))
    for asn in sorted(world.tail_cdn_servers):
        server = world.tail_cdn_servers[asn]
        groups.append((f"tailcdn:{asn}", server))
        seen.add(id(server))
    for hosted in world.sites:
        if id(hosted.server) not in seen:
            groups.append((SELF_HOSTED, hosted.server))
            seen.add(id(hosted.server))
    return groups


def apply_edge_capacity(
    world: SyntheticWorld, capacity: Optional[int]
) -> int:
    """Provision every CDN edge (provider + tail fleets) with a
    concurrent-connection limit; self-hosted origins stay unlimited.
    Returns the number of servers provisioned."""
    if capacity is None:
        return 0
    provisioned = 0
    for server in world.provider_servers.values():
        server.config.max_concurrent_connections = capacity
        provisioned += 1
    for server in world.tail_cdn_servers.values():
        server.config.max_concurrent_connections = capacity
        provisioned += 1
    return provisioned


class EdgeLoadMonitor:
    """Streams every edge event of a world into an aggregate."""

    def __init__(
        self,
        world: SyntheticWorld,
        aggregate: TrafficAggregate,
        sample_rate: float = 0.0,
        sampling_seed: int = 0,
        audit=None,
    ) -> None:
        self.world = world
        self.aggregate = aggregate
        self.loop = world.network.loop
        self.sample_rate = sample_rate
        self.rng = np.random.default_rng(sampling_seed)
        self.audit = audit if audit is not None else NULL_AUDIT
        #: Sampled passive-pipeline feed (§5.2 record shape).
        self.records: List[LogRecord] = []
        self._edge_of: Dict[int, str] = {}
        self._servers: List[H2Server] = []
        self._connection_ids: Dict[int, int] = {}
        self._next_connection_id = 1
        #: Live connections across all monitored edges (the fleet
        #: gauge behind per-bucket ``peak_concurrent``).
        self.current_connections = 0
        self.peak_connections = 0
        self._edge_current: Dict[str, int] = {}

    # -- attachment --------------------------------------------------------

    def attach(self) -> int:
        """Hook every TLS edge server; returns how many were hooked."""
        for name, server in edge_groups(self.world):
            self._edge_of[id(server)] = name
            server.connection_observer = self._on_connection_event
            server.request_observer = self._on_request
            self._servers.append(server)
        return len(self._servers)

    def detach(self) -> None:
        for server in self._servers:
            server.connection_observer = None
            server.request_observer = None
        self._servers.clear()

    # -- observation -------------------------------------------------------

    def _edge_name(self, connection) -> str:
        return self._edge_of.get(id(connection.server), SELF_HOSTED)

    def _on_connection_event(self, event: str, connection) -> None:
        name = self._edge_name(connection)
        edge = self.aggregate.edge_for(name)
        bucket = self.aggregate.bucket_for(self.loop.now())
        if event == "accepted":
            edge.connections += 1
            bucket.connections += 1
            self.current_connections += 1
            current = self._edge_current.get(name, 0) + 1
            self._edge_current[name] = current
            if current > edge.peak_concurrent:
                edge.peak_concurrent = current
            if self.current_connections > self.peak_connections:
                self.peak_connections = self.current_connections
            if self.current_connections > bucket.peak_concurrent:
                bucket.peak_concurrent = self.current_connections
        elif event == "handshake":
            edge.handshakes += 1
            bucket.handshakes += 1
            if getattr(connection.channel, "resumed", False):
                edge.resumed += 1
                bucket.resumed += 1
        elif event == "overload_goaway":
            edge.goaways += 1
            bucket.goaways += 1
            if self.audit.enabled:
                self.audit.record(
                    "edge", ReasonCode.EDGE_OVERLOAD_GOAWAY,
                    hostname=connection.sni, decision="refused",
                    edge=name,
                )
        elif event == "closed":
            self.current_connections -= 1
            self._edge_current[name] = (
                self._edge_current.get(name, 0) - 1
            )

    def _on_request(
        self, connection, authority, arrival_index, headers
    ) -> None:
        name = self._edge_name(connection)
        edge = self.aggregate.edge_for(name)
        bucket = self.aggregate.bucket_for(self.loop.now())
        mismatch = connection.sni != authority
        edge.requests += 1
        bucket.requests += 1
        if mismatch:
            edge.coalesced_requests += 1
            bucket.coalesced_requests += 1
        if self.sample_rate > 0 and \
                self.rng.random() < self.sample_rate:
            key = id(connection)
            if key not in self._connection_ids:
                self._connection_ids[key] = self._next_connection_id
                self._next_connection_id += 1
            header_map = dict(headers)
            self.records.append(LogRecord(
                timestamp=self.loop.now(),
                connection_id=self._connection_ids[key],
                sni=connection.sni,
                authority=authority,
                arrival_index=arrival_index,
                referer=header_map.get("referer", ""),
                group=None,
                sni_host_mismatch=mismatch,
                user_agent=header_map.get("user-agent", ""),
            ))
