"""``repro.traffic`` -- population-scale traffic simulation.

The crawl (:mod:`repro.dataset`) measures one browser loading one page
at a time; this package measures the *server side of the paper's
story*: what a population of concurrent users -- split into
browser-policy cohorts (§2.3's Chromium vs Firefox mix), revisiting
sites with warm caches and TLS tickets -- does to CDN edge load, and
how much of that load connection coalescing removes.

* :mod:`~repro.traffic.scenario` -- scenario configs, cohort presets,
  deterministic user sharding;
* :mod:`~repro.traffic.population` -- seeded arrival process and
  cohort assignment;
* :mod:`~repro.traffic.edge` -- edge load monitor (connections,
  handshakes, resumption, coalesced requests, overload GOAWAYs) and
  capacity provisioning;
* :mod:`~repro.traffic.aggregate` -- streaming, shard-mergeable
  aggregation with canonical JSONL export;
* :mod:`~repro.traffic.simulate` -- the sharded runner and the
  baseline / ORIGIN / ideal-SAN what-if sweep.
"""

from repro.dataset.shard import ShardResult  # noqa: F401
from repro.traffic.aggregate import (  # noqa: F401
    CohortTally,
    LoadCounters,
    TrafficAggregate,
)
from repro.traffic.edge import (  # noqa: F401
    EdgeLoadMonitor,
    apply_edge_capacity,
    edge_groups,
)
from repro.traffic.population import (  # noqa: F401
    UserProfile,
    Visit,
    build_population,
)
from repro.traffic.scenario import (  # noqa: F401
    BASELINE_COHORTS,
    CohortSpec,
    IDEAL_SAN_COHORTS,
    ORIGIN_COHORTS,
    ScenarioConfig,
    UserShard,
    WHAT_IF_POLICIES,
    plan_user_shards,
    scenario_for_policy,
)
from repro.traffic.simulate import (  # noqa: F401
    deploy_fleet_origin,
    run_scenario,
    run_what_if,
    simulate_shard,
    what_if_rows,
)

__all__ = [
    "BASELINE_COHORTS",
    "CohortSpec",
    "CohortTally",
    "EdgeLoadMonitor",
    "IDEAL_SAN_COHORTS",
    "LoadCounters",
    "ORIGIN_COHORTS",
    "ScenarioConfig",
    "ShardResult",
    "TrafficAggregate",
    "UserProfile",
    "UserShard",
    "Visit",
    "WHAT_IF_POLICIES",
    "apply_edge_capacity",
    "build_population",
    "deploy_fleet_origin",
    "edge_groups",
    "plan_user_shards",
    "run_scenario",
    "run_what_if",
    "scenario_for_policy",
    "simulate_shard",
    "what_if_rows",
]
