"""Scenario configuration and population sharding.

A :class:`ScenarioConfig` is the complete, picklable definition of one
traffic experiment: how many users, which browser-policy cohorts they
split into (§2.3's Chromium IP-coalescing vs Firefox ORIGIN mix), how
long the scenario runs, how the edge fleet is provisioned, and which
deployment switches (§5's certificate reissue + ORIGIN frames) are on.

The population is partitioned into contiguous user-id shards exactly
like the crawl's site shards: the shard *layout* is part of the
experiment definition, each shard simulates its users against its own
replica of the world on its own clock, and shard aggregates merge in
shard order -- so ``--jobs`` never changes a byte of output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.dataset.shard import derive_seed

#: Seed domains for :func:`~repro.dataset.shard.derive_seed`; the
#: crawl owns 0 (world) and 1 (crawler), traffic owns 2 and 3.
TRAFFIC_POPULATION_DOMAIN = 2
TRAFFIC_SAMPLING_DOMAIN = 3

CHROME_98_UA = (
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/98.0.4758.102 Safari/537.36"
)
FIREFOX_96_UA = (
    "Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0"
)


@dataclass(frozen=True)
class CohortSpec:
    """One user cohort: a browser policy plus its population share."""

    name: str
    #: Key into :data:`repro.browser.policy.POLICY_FACTORIES`.
    policy: str
    #: Fraction of the population; shares are normalized over the mix.
    share: float
    user_agent: str
    cache_enabled: bool = True


#: §2.3 default mix: Chromium-engine browsers dominate, Firefox is the
#: ORIGIN-frame-respecting minority.
BASELINE_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("chromium", "chromium", 0.65, CHROME_98_UA),
    CohortSpec("firefox", "firefox", 0.35, FIREFOX_96_UA),
)
#: Everyone runs Firefox with ORIGIN-frame support (§5.3's client).
ORIGIN_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("firefox-origin", "firefox+origin", 1.0, FIREFOX_96_UA),
)
#: The paper's best case: ORIGIN coalescing without the blocking DNS
#: check, certificates already covering co-hosted origins.
IDEAL_SAN_COHORTS: Tuple[CohortSpec, ...] = (
    CohortSpec("ideal-san", "ideal-origin", 1.0, FIREFOX_96_UA),
)

#: The what-if axis: named policy mixes over the same world and
#: population.  ``origin``/``ideal-san`` also flip the §5 deployment
#: switches (reissued certificates + ORIGIN frames at the CDN).
WHAT_IF_POLICIES: Tuple[str, ...] = ("baseline", "origin", "ideal-san")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one traffic experiment."""

    users: int = 1000
    site_count: int = 40
    seed: int = 2022
    #: Simulated wall-clock over which visits arrive.
    duration_ms: float = 60_000.0
    #: Mean page visits per user; revisits reuse the user's warm
    #: browser cache and TLS tickets (Sy et al.'s returning users).
    mean_visits_per_user: float = 2.0
    bucket_ms: float = 5_000.0
    cohorts: Tuple[CohortSpec, ...] = BASELINE_COHORTS
    #: ``none`` leaves the world as generated; ``origin`` runs the §5
    #: deployment (certificate reissue + ORIGIN frames at the CDN)
    #: before traffic starts.
    deployment: str = "none"
    #: Fleet-wide concurrent-connection capacity per edge (None =
    #: unlimited).  Divided across shards: each shard is a replica of
    #: the fleet serving its own user slice.
    edge_capacity: Optional[int] = None
    goaway_retry_limit: int = 2
    goaway_retry_backoff_ms: float = 120.0
    #: Zipf-like exponent for per-visit site choice (popular sites
    #: absorb most visits).
    zipf_alpha: float = 1.3
    #: Share of edge requests retained as passive-pipeline LogRecords
    #: (the rest only feed the streaming counters).
    passive_sample_rate: float = 0.02

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.duration_ms <= 0:
            raise ValueError(f"bad duration {self.duration_ms}")
        if self.bucket_ms <= 0:
            raise ValueError(f"bad bucket width {self.bucket_ms}")
        if self.deployment not in ("none", "origin"):
            raise ValueError(f"unknown deployment {self.deployment!r}")
        if not self.cohorts:
            raise ValueError("at least one cohort required")

    def normalized_shares(self) -> List[float]:
        total = sum(cohort.share for cohort in self.cohorts)
        if total <= 0:
            raise ValueError("cohort shares must sum to > 0")
        return [cohort.share / total for cohort in self.cohorts]


def scenario_for_policy(
    base: ScenarioConfig, policy: str
) -> ScenarioConfig:
    """The what-if variant of ``base`` for one named policy mix."""
    if policy == "baseline":
        return replace(base, cohorts=BASELINE_COHORTS, deployment="none")
    if policy == "origin":
        return replace(base, cohorts=ORIGIN_COHORTS, deployment="origin")
    if policy == "ideal-san":
        return replace(base, cohorts=IDEAL_SAN_COHORTS,
                       deployment="origin")
    raise ValueError(
        f"unknown what-if policy {policy!r} "
        f"(expected one of {WHAT_IF_POLICIES})"
    )


@dataclass(frozen=True)
class UserShard:
    """One worker's contiguous user-id slice of a scenario."""

    scenario: ScenarioConfig
    index: int
    shard_count: int
    #: 0-based half-open user slice [lo, hi).
    lo: int
    hi: int

    @property
    def user_count(self) -> int:
        return self.hi - self.lo

    def population_seed(self) -> int:
        return derive_seed(
            self.scenario.seed, TRAFFIC_POPULATION_DOMAIN,
            self.index, self.shard_count,
        )

    def sampling_seed(self) -> int:
        return derive_seed(
            self.scenario.seed, TRAFFIC_SAMPLING_DOMAIN,
            self.index, self.shard_count,
        )

    def edge_capacity(self) -> Optional[int]:
        """This shard replica's slice of the fleet-wide capacity."""
        if self.scenario.edge_capacity is None:
            return None
        return max(1, self.scenario.edge_capacity // self.shard_count)


#: Default shard granularity: one shard per ~500 users.
USERS_PER_SHARD = 500


def plan_user_shards(
    scenario: ScenarioConfig, shard_count: Optional[int] = None
) -> List[UserShard]:
    """Partition the population into contiguous, near-equal shards.

    Deterministic: shard ``i`` of ``n`` always covers the same user
    ids for a given population size, independent of worker count.
    """
    users = scenario.users
    if not shard_count:
        shard_count = max(1, -(-users // USERS_PER_SHARD))
    shard_count = max(1, min(shard_count, users))
    base, extra = divmod(users, shard_count)
    shards: List[UserShard] = []
    lo = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(UserShard(
            scenario=scenario, index=index, shard_count=shard_count,
            lo=lo, hi=lo + size,
        ))
        lo += size
    return shards
