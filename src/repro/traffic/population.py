"""Deterministic user population and arrival process.

Each shard draws its population from one seeded generator in a fixed
order (users in id order; per user: cohort, visit count, then per
visit: arrival time and site), so the schedule is a pure function of
``(scenario, shard layout)``.  Visit arrivals are uniform over the
scenario window and site choice follows a truncated power law --
popular sites absorb most of the traffic, which is what makes edge
load interesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.traffic.scenario import CohortSpec, UserShard


@dataclass(frozen=True)
class UserProfile:
    user_id: int
    cohort: CohortSpec


@dataclass(frozen=True)
class Visit:
    """One scheduled page visit."""

    at_ms: float
    user_id: int
    site_index: int
    #: Per-user visit counter; 0 is the cold first visit, later ones
    #: arrive with the user's warm cache and TLS tickets.
    visit_seq: int


def _site_weights(site_count: int, alpha: float) -> np.ndarray:
    weights = np.arange(1, site_count + 1, dtype=np.float64) ** -alpha
    return weights / weights.sum()


def build_population(
    shard: UserShard,
) -> Tuple[Dict[int, UserProfile], List[Visit]]:
    """This shard's users and their time-ordered visit schedule."""
    scenario = shard.scenario
    rng = np.random.default_rng(shard.population_seed())
    shares = np.asarray(scenario.normalized_shares())
    weights = _site_weights(scenario.site_count, scenario.zipf_alpha)
    profiles: Dict[int, UserProfile] = {}
    schedule: List[Visit] = []
    for user_id in range(shard.lo, shard.hi):
        cohort_index = int(rng.choice(len(shares), p=shares))
        profiles[user_id] = UserProfile(
            user_id=user_id, cohort=scenario.cohorts[cohort_index],
        )
        # At least one visit each; the Poisson tail models returning
        # users (whose revisits exercise resumption and warm caches).
        visit_count = 1 + int(rng.poisson(
            max(0.0, scenario.mean_visits_per_user - 1.0)
        ))
        at_ms = np.sort(rng.uniform(
            0.0, scenario.duration_ms, size=visit_count
        ))
        sites = rng.choice(
            scenario.site_count, size=visit_count, p=weights
        )
        for visit_seq in range(visit_count):
            schedule.append(Visit(
                at_ms=float(at_ms[visit_seq]),
                user_id=user_id,
                site_index=int(sites[visit_seq]),
                visit_seq=visit_seq,
            ))
    schedule.sort(key=lambda v: (v.at_ms, v.user_id, v.visit_seq))
    return profiles, schedule
