"""repro: a reproduction of "Respect the ORIGIN! A Best-case Evaluation
of Connection Coalescing in The Wild" (IMC 2022).

The package layers, bottom-up:

* :mod:`repro.netsim` -- deterministic discrete-event network;
* :mod:`repro.dnssim` -- zones, answer rotation, caching resolver;
* :mod:`repro.tlspki` -- certificates/SANs, CAs, validation, CT logs,
  handshake costs;
* :mod:`repro.h2` -- wire-format HTTP/2 with the ORIGIN frame (RFC
  8336), HPACK, client/server over simulated TLS, plus HTTP/1.1
  fallback;
* :mod:`repro.web` -- pages, HAR timelines, IP-to-ASN mapping;
* :mod:`repro.browser` -- Chromium/Firefox coalescing policies and the
  page-load engine;
* :mod:`repro.dataset` -- the synthetic Tranco-like web, crawler, and
  Tables 1-7 characterization;
* :mod:`repro.core` -- the paper's best-case coalescing model (section 4);
* :mod:`repro.deployment` -- the section 5 CDN deployment with passive
  and active measurement, and the section 6.7 middlebox;
* :mod:`repro.analysis` -- statistics and text rendering.

Quickstart::

    from repro.dataset import DatasetConfig, Crawler, build_world
    from repro.core import figure3

    world = build_world(DatasetConfig(site_count=200))
    result = Crawler(world).crawl()
    print(figure3(result.archives).medians())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
