"""Tranco-style site ranking.

The paper draws its targets from the Tranco top-500K list (§3.1).  The
synthetic equivalent is a deterministic ranked list of site domains;
rank is 1-based and popularity-ordered, and the generator uses the rank
both for bucket statistics (Table 1) and for mild popularity trends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class TrancoEntry:
    rank: int
    domain: str

    @property
    def www_hostname(self) -> str:
        return f"www.{self.domain}"


class TrancoList:
    """A ranked list of synthetic site domains."""

    def __init__(self, size: int, tld_cycle: tuple = (".com", ".net",
                                                      ".org", ".io")) -> None:
        if size <= 0:
            raise ValueError(f"list size must be positive, got {size}")
        self.size = size
        self._tlds = tld_cycle

    def entry(self, rank: int) -> TrancoEntry:
        if not 1 <= rank <= self.size:
            raise IndexError(
                f"rank {rank} outside [1, {self.size}]"
            )
        tld = self._tlds[(rank - 1) % len(self._tlds)]
        return TrancoEntry(rank=rank, domain=f"site{rank:06d}{tld}")

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[TrancoEntry]:
        for rank in range(1, self.size + 1):
            yield self.entry(rank)

    def top(self, count: int) -> List[TrancoEntry]:
        return [self.entry(rank) for rank in
                range(1, min(count, self.size) + 1)]

    def bucket_of(self, rank: int, bucket_size: int = 100_000) -> int:
        """0-based popularity bucket (Table 1 uses 100K buckets)."""
        return (rank - 1) // bucket_size
