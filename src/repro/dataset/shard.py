"""Sharded, parallel crawling.

The paper fanned its crawl of 315,796 sites out over 100 WebPageTest
VMs (§3.1); this module is the synthetic equivalent.  A
:class:`~repro.dataset.generator.DatasetConfig` is deterministically
partitioned into contiguous rank shards (:func:`plan_shards`); each
shard materializes *only its slice* of the synthetic web into its own
:class:`~repro.dataset.world.SyntheticWorld`, seeded from a seed
derived from ``(config.seed, shard layout)``, and is crawled
independently.  Merging the per-shard results in shard order therefore
yields archives that do not depend on how many worker processes ran
the shards -- ``jobs=4`` is archive-for-archive identical to
``jobs=1`` -- while the shard *layout* (``shard_count``) is part of
the experiment definition, like the paper's VM fan-out.

Site *plans* (ranks, pages, certificate contents) always come from one
full :class:`~repro.dataset.generator.PageGenerator` pass at the
original seed, so a site's identity is unaffected by sharding; only
world-materialization randomness (provider IP picks, server think
times) and crawl randomness are drawn from the derived per-shard
streams.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.browser.policy import policy_by_name
from repro.dataset.crawler import Crawler, CrawlResult
from repro.dataset.generator import DatasetConfig, PageGenerator, SiteRecord
from repro.dataset.world import SyntheticWorld, build_world
from repro.telemetry import CrawlTrace, Span, Telemetry
from repro.web.har import HarArchive

#: Sites per shard when the caller does not pick a layout.
DEFAULT_SHARD_SIZE = 100

#: Seed-derivation domains, so the world stream and the crawler stream
#: of the same shard never collide.
_WORLD_DOMAIN = 0
_CRAWLER_DOMAIN = 1

#: One-entry site-plan cache.  Every shard of a config needs the same
#: full-generation pass; serial runs used to pay it once *per shard*.
#: Plans are pure data -- world construction and crawling never mutate
#: a SiteRecord -- so shards may share one list.  Keyed by config
#: equality; worker processes each hold their own copy.
_PLAN_CACHE: List[Tuple[DatasetConfig, List[SiteRecord]]] = []


def generate_records(config: DatasetConfig) -> List[SiteRecord]:
    """The full ranked site plan for ``config``, memoized (last config
    wins, so sweeps over many configs do not accumulate plans)."""
    if _PLAN_CACHE and _PLAN_CACHE[0][0] == config:
        return _PLAN_CACHE[0][1]
    records = PageGenerator(config).generate_all()
    _PLAN_CACHE[:] = [(config, records)]
    return records


def derive_seed(
    base_seed: int, domain: int, shard_index: int, shard_count: int
) -> int:
    """A stable per-shard seed from the base seed and shard layout.

    Uses :class:`numpy.random.SeedSequence` spawn keys, whose mixing is
    documented as reproducible across platforms and numpy versions.
    """
    sequence = np.random.SeedSequence(
        entropy=int(base_seed),
        spawn_key=(int(domain), int(shard_count), int(shard_index)),
    )
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


@dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a dataset configuration."""

    config: DatasetConfig
    index: int
    shard_count: int
    #: 0-based half-open site slice [lo, hi) into the ranked site list.
    lo: int
    hi: int

    @property
    def site_count(self) -> int:
        return self.hi - self.lo

    @property
    def world_seed(self) -> int:
        return derive_seed(
            self.config.seed, _WORLD_DOMAIN, self.index, self.shard_count
        )

    def crawler_seed(self, base_seed: int) -> int:
        return derive_seed(
            base_seed, _CRAWLER_DOMAIN, self.index, self.shard_count
        )

    def records(self) -> List[SiteRecord]:
        """This shard's site plans, from one full-generation pass.

        The complete list is always generated at the original seed and
        sliced -- which keeps each site's plan byte-identical no matter
        the shard layout -- but the pass itself is memoized per config
        (:func:`generate_records`), so a serial multi-shard crawl plans
        the web once instead of once per shard.
        """
        return generate_records(self.config)[self.lo:self.hi]

    def build_world(self) -> SyntheticWorld:
        """Materialize only this shard's slice, on the derived seed."""
        world_config = replace(self.config, seed=self.world_seed)
        return build_world(world_config, records=self.records())


def default_shard_count(site_count: int) -> int:
    """Shard layout when the caller does not pick one: ~100-site
    shards, at least one."""
    return max(1, -(-site_count // DEFAULT_SHARD_SIZE))


def plan_shards(
    config: DatasetConfig, shard_count: Optional[int] = None
) -> List[ShardSpec]:
    """Partition ``config`` into contiguous, near-equal rank shards.

    The partition is deterministic: shard ``i`` of ``n`` always covers
    the same ranks for a given ``site_count``, independent of worker
    count or scheduling.
    """
    total = config.site_count
    count = shard_count if shard_count else default_shard_count(total)
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    count = min(count, total)
    base, extra = divmod(total, count)
    shards: List[ShardSpec] = []
    lo = 0
    for index in range(count):
        hi = lo + base + (1 if index < extra else 0)
        shards.append(ShardSpec(
            config=config, index=index, shard_count=count, lo=lo, hi=hi
        ))
        lo = hi
    return shards


@dataclass(frozen=True)
class ShardResult:
    """One shard worker's bundled output, crawl and traffic alike.

    ``payload`` is the workload's own merge unit (a
    :class:`~repro.dataset.crawler.CrawlResult` for crawl shards, a
    :class:`~repro.traffic.aggregate.TrafficAggregate` for traffic
    shards); ``spans``/``metrics``/``events`` are the telemetry
    bundle that :class:`~repro.telemetry.CrawlTrace` merges in shard
    order.  ``extra`` carries worker-local state that never crosses a
    process boundary (the traffic shard's
    :class:`~repro.traffic.edge.EdgeLoadMonitor`).
    """

    payload: object
    spans: Sequence[Span] = ()
    metrics: Sequence[dict] = ()
    events: Sequence[object] = ()
    extra: object = None


@dataclass(frozen=True)
class CrawlParams:
    """Crawler knobs that shape results (and key the crawl cache)."""

    policy: str = "chromium"
    speculative_rate: float = 0.12
    dns_latency_ms: float = 48.0
    seed: int = 7
    #: Comma-joined ALPN offer (``"h2"`` or ``"h2,h3"``).  The default
    #: is omitted from the cache key so pre-h3 cache entries still hit.
    alpn: str = "h2"


def crawl_shard(spec: ShardSpec, params: CrawlParams) -> CrawlResult:
    """Build one shard's world and crawl it (runs inside workers)."""
    world = spec.build_world()
    crawler = Crawler(
        world,
        policy=policy_by_name(params.policy),
        speculative_rate=params.speculative_rate,
        dns_latency_ms=params.dns_latency_ms,
        seed=spec.crawler_seed(params.seed),
        alpn=params.alpn,
    )
    return crawler.crawl()


def _crawl_shard_json(payload: Tuple[ShardSpec, CrawlParams]) -> List[str]:
    """Picklable worker entry point: archives as JSON lines."""
    spec, params = payload
    return [
        archive.to_json()
        for archive in crawl_shard(spec, params).archives
    ]


def crawl_shard_traced(
    spec: ShardSpec, params: CrawlParams,
    trace: bool = True, audit: bool = True,
) -> ShardResult:
    """Crawl one shard with live telemetry.

    Returns a :class:`ShardResult` whose payload is the shard's
    :class:`~repro.dataset.crawler.CrawlResult`; the spans carry the
    shard's local ids and timestamps (its simulated clock starts at
    zero) and are merged/renumbered by
    :class:`~repro.telemetry.CrawlTrace` in shard order, as are the
    audit events.  ``trace``/``audit`` toggle the collectors
    independently; neither draws randomness nor schedules events, so
    the archives are identical to an untraced :func:`crawl_shard` of
    the same spec.
    """
    world = spec.build_world()
    telemetry = Telemetry(
        clock=world.network.loop.now, trace=trace, audit=audit
    )
    crawler = Crawler(
        world,
        policy=policy_by_name(params.policy),
        speculative_rate=params.speculative_rate,
        dns_latency_ms=params.dns_latency_ms,
        seed=spec.crawler_seed(params.seed),
        telemetry=telemetry,
        alpn=params.alpn,
    )
    shard_span = None
    if telemetry.tracer.enabled:
        shard_span = telemetry.tracer.begin(
            "shard", category="crawler", index=spec.index,
            sites=spec.site_count,
        )
    result = crawler.crawl()
    if shard_span is not None:
        telemetry.tracer.end(
            shard_span, attempted=result.attempted,
            succeeded=result.success_count,
        )
    return ShardResult(
        payload=result,
        spans=telemetry.tracer.spans,
        metrics=telemetry.metrics.snapshot(),
        events=telemetry.audit.events,
    )


def _crawl_shard_traced_json(
    payload: Tuple[ShardSpec, CrawlParams, bool, bool]
) -> Tuple[List[str], List[dict], List[dict], List[dict]]:
    """Picklable traced worker entry: everything as JSON-able docs."""
    spec, params, trace, audit = payload
    shard_result = crawl_shard_traced(
        spec, params, trace=trace, audit=audit
    )
    return (
        [archive.to_json()
         for archive in shard_result.payload.archives],
        [span.to_dict() for span in shard_result.spans],
        shard_result.metrics,
        [event.to_dict() for event in shard_result.events],
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ParallelCrawler:
    """Crawls a dataset shard-by-shard, optionally across processes.

    ``jobs=1`` runs every shard in-process (no serialization); higher
    job counts fan shards out over a :mod:`multiprocessing` pool and
    re-inflate the returned HAR JSON.  Both paths merge shard results
    in shard order, so the output is identical either way.
    """

    def __init__(
        self,
        config: DatasetConfig,
        params: Optional[CrawlParams] = None,
        shard_count: Optional[int] = None,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.config = config
        self.params = params or CrawlParams()
        self.shards = plan_shards(config, shard_count)
        self.jobs = jobs

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def crawl(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CrawlResult:
        """Crawl all shards; ``progress`` gets (done_shards, total)."""
        total = len(self.shards)
        merged = CrawlResult()
        if self.jobs == 1 or total == 1:
            for done, spec in enumerate(self.shards, start=1):
                merged.archives.extend(
                    crawl_shard(spec, self.params).archives
                )
                if progress is not None:
                    progress(done, total)
            return merged
        payloads = [(spec, self.params) for spec in self.shards]
        workers = min(self.jobs, total)
        with _mp_context().Pool(processes=workers) as pool:
            # imap preserves shard order while letting shards finish
            # out of order in the workers.
            for done, lines in enumerate(
                pool.imap(_crawl_shard_json, payloads), start=1
            ):
                merged.archives.extend(
                    HarArchive.from_json(line) for line in lines
                )
                if progress is not None:
                    progress(done, total)
        return merged

    def crawl_traced(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        trace: bool = True,
        audit: bool = True,
        watch: Optional[
            Callable[[int, int, CrawlTrace], None]
        ] = None,
    ) -> Tuple[CrawlResult, CrawlTrace]:
        """Crawl all shards with telemetry; merge spans, metrics, and
        audit events.

        Shard results are merged in shard order with renumbered span
        ids and audit sequence numbers, so the trace is byte-identical
        whatever ``jobs`` ran it.  ``watch`` (if given) sees
        ``(done_shards, total, merged_trace_so_far)`` after each shard
        merge -- the run ledger's heartbeat reads live counters there.
        """
        from repro.audit.log import AuditEvent

        total = len(self.shards)
        merged = CrawlResult()
        crawl_trace = CrawlTrace()
        if self.jobs == 1 or total == 1:
            for done, spec in enumerate(self.shards, start=1):
                shard_result = crawl_shard_traced(
                    spec, self.params, trace=trace, audit=audit
                )
                merged.archives.extend(shard_result.payload.archives)
                crawl_trace.extend(
                    list(shard_result.spans), shard=spec.index
                )
                crawl_trace.metrics.absorb(shard_result.metrics)
                crawl_trace.extend_audit(
                    list(shard_result.events), shard=spec.index
                )
                if progress is not None:
                    progress(done, total)
                if watch is not None:
                    watch(done, total, crawl_trace)
            return merged, crawl_trace
        payloads = [
            (spec, self.params, trace, audit) for spec in self.shards
        ]
        workers = min(self.jobs, total)
        with _mp_context().Pool(processes=workers) as pool:
            for done, (lines, span_docs, metrics, event_docs) in \
                    enumerate(pool.imap(_crawl_shard_traced_json,
                                        payloads), start=1):
                merged.archives.extend(
                    HarArchive.from_json(line) for line in lines
                )
                crawl_trace.extend(
                    [Span.from_dict(doc) for doc in span_docs],
                    shard=self.shards[done - 1].index,
                )
                crawl_trace.metrics.absorb(metrics)
                crawl_trace.extend_audit(
                    [AuditEvent.from_dict(doc) for doc in event_docs],
                    shard=self.shards[done - 1].index,
                )
                if progress is not None:
                    progress(done, total)
                if watch is not None:
                    watch(done, total, crawl_trace)
        return merged, crawl_trace


def plan_certificates_sharded(
    config: DatasetConfig, shard_count: Optional[int] = None
):
    """The §4.3 certificate plan over per-shard worlds, merged in
    shard order -- world materialization without any crawling, for
    cache-hit paths that still need certificate state."""
    from repro.core.certplan import CertificatePlan, plan_certificates

    plans = []
    for spec in plan_shards(config, shard_count):
        plans.extend(plan_certificates(spec.build_world()).plans)
    return CertificatePlan(plans=plans)
