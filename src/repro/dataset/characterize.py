"""Dataset characterization: recompute the paper's Tables 1-7 + Fig 1.

Each function consumes HAR archives from a crawl and returns plain data
(lists of row tuples / dicts) that the benches print and the tests
assert shape properties on.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.render import format_pct, render_table
from repro.web.har import HarArchive


def _median(values: Sequence[float]) -> float:
    return float(np.median(values)) if len(values) else 0.0


# -- Table 1 -----------------------------------------------------------------

@dataclass
class Table1Row:
    bucket_label: str
    attempted: int
    success: int
    median_requests: float
    median_plt_ms: float
    median_dns: float
    median_tls: float


def table1(
    archives: Sequence[HarArchive], bucket_size: int = 100_000,
    rank_space: int = 500_000,
) -> List[Table1Row]:
    """Crawl summary per popularity bucket, plus a Total row."""
    buckets: Dict[int, List[HarArchive]] = defaultdict(list)
    for archive in archives:
        bucket = min((archive.page.rank - 1) // bucket_size,
                     rank_space // bucket_size - 1)
        buckets[bucket].append(archive)

    rows: List[Table1Row] = []
    for bucket in sorted(buckets):
        group = buckets[bucket]
        successes = [a for a in group if a.page.success]
        label = (f"{bucket * bucket_size // 1000}K-"
                 f"{(bucket + 1) * bucket_size // 1000}K")
        rows.append(_summary_row(label, group, successes))
    all_success = [a for a in archives if a.page.success]
    rows.append(_summary_row("Total", list(archives), all_success))
    return rows


def _summary_row(label, group, successes) -> Table1Row:
    return Table1Row(
        bucket_label=label,
        attempted=len(group),
        success=len(successes),
        median_requests=_median([a.request_count for a in successes]),
        median_plt_ms=_median([a.page_load_time for a in successes]),
        median_dns=_median([a.dns_query_count() for a in successes]),
        median_tls=_median([a.tls_connection_count() for a in successes]),
    )


# -- Table 2 -----------------------------------------------------------------

def table2(
    archives: Sequence[HarArchive], top: int = 10
) -> List[Tuple[int, str, int, float]]:
    """Top destination ASes: (asn, org, requests, share)."""
    counter: Counter = Counter()
    orgs: Dict[int, str] = {}
    total = 0
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            total += 1
            if entry.asn:
                counter[entry.asn] += 1
                orgs[entry.asn] = entry.as_org
    rows = []
    for asn, count in counter.most_common(top):
        rows.append((asn, orgs[asn], count, count / total if total else 0.0))
    return rows


def unique_as_count(archives: Sequence[HarArchive]) -> int:
    seen = set()
    for archive in archives:
        for entry in archive.entries:
            if entry.asn:
                seen.add(entry.asn)
    return len(seen)


# -- Table 3 -----------------------------------------------------------------

def table3(
    archives: Sequence[HarArchive],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(protocol counts, {'secure': n, 'insecure': n})."""
    protocols: Counter = Counter()
    security = {"secure": 0, "insecure": 0}
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            label = entry.protocol or "N/A"
            if entry.status == 0:
                label = "N/A"
            protocols[label] += 1
            security["secure" if entry.secure else "insecure"] += 1
    return dict(protocols), security


# -- Table 4 -----------------------------------------------------------------

def table4(
    archives: Sequence[HarArchive], top: int = 10
) -> Tuple[List[Tuple[str, int, float]], int, int]:
    """Top issuers among new TLS validations.

    Returns (rows, validations, total_requests); rows are
    (issuer, validations, share-of-validations).
    """
    counter: Counter = Counter()
    validations = 0
    total = 0
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            total += 1
            if entry.new_tls_connection and entry.certificate_issuer:
                validations += 1
                counter[entry.certificate_issuer] += 1
    rows = [
        (issuer, count, count / validations if validations else 0.0)
        for issuer, count in counter.most_common(top)
    ]
    return rows, validations, total


# -- Table 5 -----------------------------------------------------------------

def table5(
    archives: Sequence[HarArchive], top: int = 12
) -> List[Tuple[str, int, float]]:
    counter: Counter = Counter()
    total = 0
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            if entry.content_type:
                counter[entry.content_type] += 1
                total += 1
    return [
        (content_type, count, count / total if total else 0.0)
        for content_type, count in counter.most_common(top)
    ]


# -- Table 6 -----------------------------------------------------------------

def table6(
    archives: Sequence[HarArchive],
    top_ases: int = 3,
    top_types: int = 4,
) -> Dict[Tuple[int, str], List[Tuple[str, int, float]]]:
    """Per top-AS content-type breakdown, keyed by (asn, org)."""
    by_as: Dict[int, Counter] = defaultdict(Counter)
    orgs: Dict[int, str] = {}
    request_totals: Counter = Counter()
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            if entry.asn and entry.content_type:
                by_as[entry.asn][entry.content_type] += 1
                request_totals[entry.asn] += 1
                orgs[entry.asn] = entry.as_org
    result = {}
    for asn, _ in request_totals.most_common(top_ases):
        total = request_totals[asn]
        result[(asn, orgs[asn])] = [
            (content_type, count, count / total)
            for content_type, count in by_as[asn].most_common(top_types)
        ]
    return result


# -- Table 7 -----------------------------------------------------------------

def table7(
    archives: Sequence[HarArchive], top: int = 10
) -> List[Tuple[str, int, float]]:
    """Top subresource hostnames (excluding each page's own root)."""
    counter: Counter = Counter()
    total = 0
    for archive in archives:
        if not archive.page.success:
            continue
        for entry in archive.entries:
            total += 1
            if entry.hostname != archive.page.hostname:
                counter[entry.hostname] += 1
    return [
        (hostname, count, count / total if total else 0.0)
        for hostname, count in counter.most_common(top)
    ]


# -- Figure 1 -----------------------------------------------------------------

@dataclass
class Figure1Data:
    """Histogram + CDF of unique ASes needed per page."""

    as_counts: List[int]
    histogram: Dict[int, float]   # count -> fraction of pages
    cdf: List[Tuple[int, float]]  # (count, cumulative fraction)

    def fraction_with(self, count: int) -> float:
        return self.histogram.get(count, 0.0)

    def cdf_at(self, count: int) -> float:
        best = 0.0
        for value, cumulative in self.cdf:
            if value <= count:
                best = cumulative
        return best

    def ases_for_fraction(self, fraction: float) -> int:
        for value, cumulative in self.cdf:
            if cumulative >= fraction:
                return value
        return self.cdf[-1][0] if self.cdf else 0


def figure1(archives: Sequence[HarArchive]) -> Figure1Data:
    counts = [
        len(archive.unique_asns())
        for archive in archives
        if archive.page.success
    ]
    total = len(counts)
    histogram_counter = Counter(counts)
    histogram = {
        value: count / total for value, count in
        sorted(histogram_counter.items())
    } if total else {}
    cdf: List[Tuple[int, float]] = []
    cumulative = 0.0
    for value in sorted(histogram_counter):
        cumulative += histogram_counter[value] / total
        cdf.append((value, cumulative))
    return Figure1Data(as_counts=counts, histogram=histogram, cdf=cdf)


# -- CLI table registry -------------------------------------------------------
#
# One rendered-string builder per paper table, keyed by the ``--tables``
# token.  The CLI prints whatever these return; keeping the rendering
# next to the data keeps the seven tables from drifting apart again.

def _render_table1(result) -> str:
    rows = table1(result.archives)
    return render_table(
        "Table 1 -- crawl summary",
        ["Rank", "Attempted", "Success", "#Reqs", "PLT (ms)", "#DNS",
         "#TLS"],
        [(r.bucket_label, r.attempted, r.success,
          f"{r.median_requests:.0f}", f"{r.median_plt_ms:.0f}",
          f"{r.median_dns:.0f}", f"{r.median_tls:.0f}") for r in rows],
    )


def _render_table2(result) -> str:
    return render_table(
        "Table 2 -- top destination ASes",
        ["ASN", "Org", "#Req", "%"],
        [(asn, org, count, format_pct(share))
         for asn, org, count, share in table2(result.successes)],
    )


def _render_table3(result) -> str:
    protocols, _ = table3(result.successes)
    total = sum(protocols.values())
    return render_table(
        "Table 3 -- protocols",
        ["Protocol", "#Req", "%"],
        [(name, count, format_pct(count / total))
         for name, count in sorted(protocols.items(),
                                   key=lambda kv: -kv[1])],
    )


def _render_table4(result) -> str:
    rows, validations, total = table4(result.successes)
    return render_table(
        f"Table 4 -- certificate issuers ({validations} validations "
        f"over {total} requests)",
        ["Issuer", "#Validations", "%"],
        [(issuer, count, format_pct(share))
         for issuer, count, share in rows],
    )


def _render_table5(result) -> str:
    return render_table(
        "Table 5 -- content types",
        ["Content type", "#Req", "%"],
        [(content_type, count, format_pct(share))
         for content_type, count, share in table5(result.successes)],
    )


def _render_table6(result) -> str:
    rows = []
    for (asn, org), breakdown in table6(result.successes).items():
        for content_type, count, share in breakdown:
            rows.append((asn, org, content_type, count,
                         format_pct(share)))
    return render_table(
        "Table 6 -- content types per top AS",
        ["ASN", "Org", "Content type", "#Req", "%"],
        rows,
    )


def _render_table7(result) -> str:
    return render_table(
        "Table 7 -- top third-party hostnames",
        ["Hostname", "#Req", "%"],
        [(hostname, count, format_pct(share))
         for hostname, count, share in table7(result.successes)],
    )


#: ``--tables`` tokens, in render order.
CRAWL_TABLES: Dict[str, Callable[[object], str]] = {
    "1": _render_table1,
    "2": _render_table2,
    "3": _render_table3,
    "4": _render_table4,
    "5": _render_table5,
    "6": _render_table6,
    "7": _render_table7,
}

DEFAULT_TABLES = "1,2,3"


def render_crawl_table(token: str, result) -> str:
    """Render one paper table (by ``--tables`` token) from a crawl
    result (anything with ``.archives`` and ``.successes``)."""
    return CRAWL_TABLES[token](result)


# -- per-page measured distributions (feed Figure 3) -------------------------

def measured_distributions(
    archives: Sequence[HarArchive],
) -> Dict[str, List[int]]:
    """Per-page measured DNS-query and TLS-connection counts."""
    dns, tls = [], []
    for archive in archives:
        if not archive.page.success:
            continue
        dns.append(archive.dns_query_count())
        tls.append(archive.tls_connection_count())
    return {"dns": dns, "tls": tls}
