"""Calibration profiles drawn from the paper's measurements.

Every constant here is traceable to a table in the paper; the dataset
generator samples from these so that a characterization of the
synthetic crawl reproduces the published marginals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.web.content import ContentType


@dataclass(frozen=True)
class PopularHostname:
    """A widely used third-party subresource hostname (Tables 7/9)."""

    hostname: str
    provider: str
    #: Probability that a page uses this hostname.
    usage_rate: float
    #: Content types this host serves, with weights.
    content: Tuple[Tuple[ContentType, float], ...]
    #: Mean number of requests a using page makes to this hostname.
    requests_per_page: float = 1.6


@dataclass(frozen=True)
class ProviderProfile:
    """One hosting/CDN provider (= one AS in the dataset).

    ``request_share`` mirrors Table 2; ``site_share`` mirrors the
    hosting shares in Table 9 (Cloudflare 24.74%, Amazon 7.75%, Google
    5.09%); ``issuer`` is the CA the provider provisions for its
    customers (Table 4).
    """

    name: str
    asn: int
    request_share: float
    site_share: float
    issuer: str
    #: Number of distinct edge IPs the provider fronts content with.
    ip_pool_size: int = 8
    #: Addresses returned per DNS answer (multi-A for load balancing).
    dns_answer_size: int = 2
    #: Probability a server on this provider negotiates only HTTP/1.1.
    h1_only_rate: float = 0.0
    #: Whether the provider's edge also terminates HTTP/3 (QUIC).
    #: Static per-provider (the big CDNs rolled h3 out fleet-wide), so
    #: flipping it never perturbs the generator's RNG draw order.
    supports_h3: bool = False
    #: Per-provider content-type mix (Table 6); None = global mix.
    content_mix: Optional[Tuple[Tuple[ContentType, float], ...]] = None


#: Table 6: top content types for the top-3 ASes, renormalized over the
#: full type set by scaling the global mix for the unlisted remainder.
_GOOGLE_MIX = (
    (ContentType.TEXT_JAVASCRIPT, 0.2169),
    (ContentType.TEXT_HTML, 0.1439),
    (ContentType.IMAGE_GIF, 0.1096),
    (ContentType.FONT_WOFF2, 0.0999),
    (ContentType.APPLICATION_JAVASCRIPT, 0.09),
    (ContentType.IMAGE_PNG, 0.08),
    (ContentType.APPLICATION_JSON, 0.08),
    (ContentType.IMAGE_JPEG, 0.07),
    (ContentType.TEXT_CSS, 0.06),
    (ContentType.TEXT_PLAIN, 0.05),
)

_CLOUDFLARE_MIX = (
    (ContentType.APPLICATION_JAVASCRIPT, 0.2232),
    (ContentType.IMAGE_JPEG, 0.1943),
    (ContentType.IMAGE_PNG, 0.1196),
    (ContentType.TEXT_CSS, 0.1072),
    (ContentType.TEXT_HTML, 0.09),
    (ContentType.IMAGE_GIF, 0.06),
    (ContentType.TEXT_JAVASCRIPT, 0.06),
    (ContentType.FONT_WOFF2, 0.05),
    (ContentType.APPLICATION_JSON, 0.05),
    (ContentType.IMAGE_WEBP, 0.05),
)

_AMAZON_MIX = (
    (ContentType.APPLICATION_JAVASCRIPT, 0.2136),
    (ContentType.IMAGE_JPEG, 0.1467),
    (ContentType.IMAGE_PNG, 0.1344),
    (ContentType.TEXT_CSS, 0.0681),
    (ContentType.TEXT_HTML, 0.09),
    (ContentType.APPLICATION_JSON, 0.09),
    (ContentType.TEXT_JAVASCRIPT, 0.08),
    (ContentType.IMAGE_GIF, 0.06),
    (ContentType.FONT_WOFF2, 0.06),
    (ContentType.IMAGE_WEBP, 0.06),
)

#: Table 2 (request shares) + Table 9 (site-hosting shares) + Table 4
#: (issuers).  ``request_share`` values are the Table 2 percentages;
#: residual request volume lands on the tail ASes.
PROVIDERS: Tuple[ProviderProfile, ...] = (
    ProviderProfile(
        name="Google", asn=15169, request_share=0.2210, site_share=0.0509,
        issuer="Google Trust Services CA 101", ip_pool_size=12,
        dns_answer_size=2, content_mix=_GOOGLE_MIX, supports_h3=True,
    ),
    ProviderProfile(
        name="Cloudflare", asn=13335, request_share=0.1375,
        site_share=0.2474, issuer="Cloudflare Inc ECC CA-3",
        ip_pool_size=12, dns_answer_size=2, content_mix=_CLOUDFLARE_MIX,
        supports_h3=True,
    ),
    ProviderProfile(
        name="Amazon 02", asn=16509, request_share=0.0840,
        site_share=0.0775, issuer="Amazon", ip_pool_size=10,
        dns_answer_size=2, content_mix=_AMAZON_MIX,
    ),
    ProviderProfile(
        name="Amazon AES", asn=14618, request_share=0.0562,
        site_share=0.015, issuer="Amazon", ip_pool_size=8,
    ),
    ProviderProfile(
        name="Fastly", asn=54113, request_share=0.0357, site_share=0.02,
        issuer="DigiCert SHA2 High Assurance Server CA", ip_pool_size=8,
        supports_h3=True,
    ),
    ProviderProfile(
        name="Akamai AS", asn=16625, request_share=0.0302,
        site_share=0.015,
        issuer="DigiCert SHA2 Secure Server CA", ip_pool_size=8,
    ),
    ProviderProfile(
        name="Facebook", asn=32934, request_share=0.0278,
        site_share=0.001, issuer="DigiCert SHA2 High Assurance Server CA",
        ip_pool_size=6, supports_h3=True,
    ),
    ProviderProfile(
        name="Akamai Intl. B.V.", asn=20940, request_share=0.0162,
        site_share=0.01, issuer="DigiCert SHA2 Secure Server CA",
        ip_pool_size=6,
    ),
    ProviderProfile(
        name="OVH SAS", asn=16276, request_share=0.0152, site_share=0.04,
        issuer="Let's Encrypt (R3)", ip_pool_size=6, dns_answer_size=1,
        h1_only_rate=0.30,
    ),
    ProviderProfile(
        name="Hetzner Online GmbH", asn=24940, request_share=0.0130,
        site_share=0.04, issuer="Let's Encrypt (R3)", ip_pool_size=6,
        dns_answer_size=1, h1_only_rate=0.30,
    ),
)

#: Issuers for tail (self-hosted) sites with rough Table 4 residual
#: weights after the provider-tied issuers above.
TAIL_ISSUERS: Tuple[Tuple[str, float], ...] = (
    ("Let's Encrypt (R3)", 0.38),
    ("Sectigo RSA DV Secure Server CA", 0.22),
    ("GoDaddy Secure Certificate Authority - G2", 0.12),
    ("DigiCert TLS RSA SHA256 2020 CA1", 0.11),
    ("GeoTrust RSA CA 2018", 0.07),
    ("cPanel Inc CA", 0.05),
    ("DFN-Verein Global Issuing CA", 0.03),
    ("GlobalSign CloudSSL CA - SHA256 - G3", 0.02),
)

#: Table 5 content-type weights (normalized over the modeled types).
CONTENT_TYPE_WEIGHTS: Tuple[Tuple[ContentType, float], ...] = (
    (ContentType.APPLICATION_JAVASCRIPT, 0.1426),
    (ContentType.IMAGE_JPEG, 0.1302),
    (ContentType.IMAGE_PNG, 0.1067),
    (ContentType.TEXT_HTML, 0.1032),
    (ContentType.IMAGE_GIF, 0.0897),
    (ContentType.TEXT_CSS, 0.0779),
    (ContentType.TEXT_JAVASCRIPT, 0.0676),
    (ContentType.APPLICATION_JSON, 0.0353),
    (ContentType.APPLICATION_X_JAVASCRIPT, 0.0336),
    (ContentType.FONT_WOFF2, 0.0268),
    (ContentType.IMAGE_WEBP, 0.0267),
    (ContentType.TEXT_PLAIN, 0.0252),
)

#: Tables 7 and 9: the most-requested third-party hostnames, with
#: per-page usage rates chosen so the request shares land near the
#: published percentages (Table 7 column "%").
POPULAR_THIRD_PARTIES: Tuple[PopularHostname, ...] = (
    PopularHostname(
        "fonts.gstatic.com", "Google", usage_rate=0.60,
        content=((ContentType.FONT_WOFF2, 1.0),),
        requests_per_page=3.0,
    ),
    PopularHostname(
        "www.google-analytics.com", "Google", usage_rate=0.62,
        content=((ContentType.TEXT_JAVASCRIPT, 0.7),
                 (ContentType.IMAGE_GIF, 0.3)),
        requests_per_page=2.0,
    ),
    PopularHostname(
        "www.facebook.com", "Facebook", usage_rate=0.35,
        content=((ContentType.TEXT_JAVASCRIPT, 0.6),
                 (ContentType.IMAGE_GIF, 0.4)),
        requests_per_page=2.5,
    ),
    PopularHostname(
        "www.google.com", "Google", usage_rate=0.45,
        content=((ContentType.TEXT_HTML, 0.5),
                 (ContentType.TEXT_JAVASCRIPT, 0.5)),
        requests_per_page=2.0,
    ),
    PopularHostname(
        "tpc.googlesyndication.com", "Google", usage_rate=0.25,
        content=((ContentType.TEXT_HTML, 0.5),
                 (ContentType.TEXT_JAVASCRIPT, 0.5)),
        requests_per_page=3.0,
    ),
    PopularHostname(
        "cm.g.doubleclick.net", "Google", usage_rate=0.27,
        content=((ContentType.IMAGE_GIF, 0.6),
                 (ContentType.TEXT_HTML, 0.4)),
        requests_per_page=2.5,
    ),
    PopularHostname(
        "googleads.g.doubleclick.net", "Google", usage_rate=0.26,
        content=((ContentType.TEXT_HTML, 0.5),
                 (ContentType.TEXT_JAVASCRIPT, 0.5)),
        requests_per_page=2.5,
    ),
    PopularHostname(
        "pagead2.googlesyndication.com", "Google", usage_rate=0.26,
        content=((ContentType.TEXT_JAVASCRIPT, 1.0),),
        requests_per_page=2.5,
    ),
    PopularHostname(
        "fonts.googleapis.com", "Google", usage_rate=0.55,
        content=((ContentType.TEXT_CSS, 1.0),),
        requests_per_page=1.4,
    ),
    PopularHostname(
        "cdn.shopify.com", "Cloudflare", usage_rate=0.06,
        content=((ContentType.IMAGE_JPEG, 0.4),
                 (ContentType.IMAGE_PNG, 0.2),
                 (ContentType.APPLICATION_JAVASCRIPT, 0.4)),
        requests_per_page=12.0,
    ),
    # Table 9 provider-specific hosts.
    PopularHostname(
        "cdnjs.cloudflare.com", "Cloudflare", usage_rate=0.08,
        content=((ContentType.APPLICATION_JAVASCRIPT, 0.7),
                 (ContentType.TEXT_CSS, 0.3)),
        requests_per_page=4.0,
    ),
    PopularHostname(
        "ajax.cloudflare.com", "Cloudflare", usage_rate=0.05,
        content=((ContentType.APPLICATION_JAVASCRIPT, 1.0),),
        requests_per_page=1.5,
    ),
    PopularHostname(
        "cdn.jsdelivr.net", "Cloudflare", usage_rate=0.05,
        content=((ContentType.APPLICATION_JAVASCRIPT, 0.7),
                 (ContentType.TEXT_CSS, 0.3)),
        requests_per_page=2.5,
    ),
    PopularHostname(
        "dxxxxxxxxxxxx.cloudfront.net", "Amazon 02", usage_rate=0.07,
        content=((ContentType.IMAGE_JPEG, 0.3),
                 (ContentType.IMAGE_PNG, 0.2),
                 (ContentType.APPLICATION_JAVASCRIPT, 0.5)),
        requests_per_page=4.0,
    ),
    PopularHostname(
        "script.hotjar.com", "Amazon 02", usage_rate=0.05,
        content=((ContentType.APPLICATION_JAVASCRIPT, 1.0),),
        requests_per_page=2.0,
    ),
    PopularHostname(
        "assets.s3.amazonaws.com", "Amazon 02", usage_rate=0.05,
        content=((ContentType.IMAGE_JPEG, 0.4),
                 (ContentType.IMAGE_PNG, 0.3),
                 (ContentType.APPLICATION_JSON, 0.3)),
        requests_per_page=3.0,
    ),
    PopularHostname(
        "www.googletagmanager.com", "Google", usage_rate=0.50,
        content=((ContentType.TEXT_JAVASCRIPT, 1.0),),
        requests_per_page=1.3,
    ),
    PopularHostname(
        "cdn.fastly-insights.com", "Fastly", usage_rate=0.06,
        content=((ContentType.APPLICATION_JAVASCRIPT, 0.8),
                 (ContentType.APPLICATION_JSON, 0.2)),
        requests_per_page=2.0,
    ),
    PopularHostname(
        "static.akamaized.net", "Akamai AS", usage_rate=0.05,
        content=((ContentType.IMAGE_JPEG, 0.5),
                 (ContentType.APPLICATION_JAVASCRIPT, 0.5)),
        requests_per_page=3.0,
    ),
)

#: Table 1: per-rank-bucket crawl success rates (success / 100K).
SUCCESS_RATE_BY_BUCKET: Tuple[float, ...] = (
    0.68244, 0.64163, 0.63334, 0.59827, 0.60228,
)

#: Table 1: per-bucket median subresource request counts.
MEDIAN_REQUESTS_BY_BUCKET: Tuple[float, ...] = (89, 83, 80, 79, 78)

#: Table 3: protocol mix targets (fraction of requests).
PROTOCOL_TARGETS: Dict[str, float] = {
    "h2": 0.7364,
    "http/1.1": 0.1909,
    "insecure": 0.0147,
}

#: §5.3: share of third-party script/json requests made through
#: fetch()/XHR or crossorigin=anonymous (these never coalesce).
ANONYMOUS_FETCH_RATE = 0.30


def provider_by_name(name: str) -> ProviderProfile:
    for profile in PROVIDERS:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown provider {name!r}")
