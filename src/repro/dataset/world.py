"""Materialize generated sites into a runnable simulated internet.

:func:`build_world` turns :class:`~repro.dataset.generator.SiteRecord`
plans into hosts, listening servers, DNS zones, signed certificates,
and an AS database -- everything the crawler's browser engine touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset import profiles
from repro.dataset.generator import (
    DatasetConfig,
    PageGenerator,
    SiteRecord,
    TAIL_CDN_ASN_BASE,
)
from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.h2.server import H2Server, ServerConfig
from repro.netsim import (
    AddressAllocator,
    EventLoop,
    Host,
    LatencyModel,
    LinkSpec,
    Network,
)
from repro.tlspki import CertificateAuthority, IssuancePolicy, TrustStore
from repro.tlspki.certificate import Certificate
from repro.web.asdb import AsDatabase

#: Region names.
CLIENT_REGION = "client-isp"
CDN_REGION = "cdn-edge"
TAIL_REGION = "tail-hosting"


def _default_latency() -> LatencyModel:
    model = LatencyModel(
        default=LinkSpec(rtt_ms=40.0, bandwidth_bpms=2500.0)
    )
    # CDN edges sit close to clients; tail hosting is far.
    model.set_link(CLIENT_REGION, CDN_REGION,
                   LinkSpec(rtt_ms=24.0, bandwidth_bpms=2500.0))
    model.set_link(CLIENT_REGION, TAIL_REGION,
                   LinkSpec(rtt_ms=110.0, bandwidth_bpms=2000.0))
    return model


@dataclass
class HostedSite:
    """Where one site ended up in the world."""

    record: SiteRecord
    certificate: Certificate
    server: H2Server
    root_ips: List[str]
    shard_ips: Dict[str, List[str]]


class SyntheticWorld:
    """The full simulated internet for one dataset configuration."""

    def __init__(self, config: DatasetConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed + 1)
        self.network = Network(
            loop=EventLoop(), latency=_default_latency()
        )
        self.allocator = AddressAllocator()
        self.asdb = AsDatabase()
        self.dns_authority = AuthoritativeServer()
        self.root_ca = CertificateAuthority(
            "Synthetic Web Root CA", rng=np.random.default_rng(config.seed)
        )
        self.trust_store = TrustStore([self.root_ca])
        self.issuers: Dict[str, CertificateAuthority] = {}
        self.provider_hosts: Dict[str, Host] = {}
        self.provider_servers: Dict[str, H2Server] = {}
        self.tail_cdn_servers: Dict[int, H2Server] = {}
        self.client_host = self.network.add_host(
            Host("crawler-client", CLIENT_REGION,
                 self.allocator.allocate(1))
        )
        self.sites: List[HostedSite] = []
        self.popular_hostnames: Dict[str, str] = {}  # hostname -> provider
        #: (authority, path) -> body size; consulted by every server.
        self.content_registry: Dict[Tuple[str, str], int] = {}
        # All parallel downloads contend on the client's access link.
        self.network.latency.enable_shared_ingress(CLIENT_REGION, 2800.0)

    def handler(self, authority: str, path: str, headers):
        """Shared request handler: bodies sized from the registry."""
        size = self.content_registry.get((authority, path), 2_000)
        return 200, [("content-type", "application/octet-stream")], \
            b"x" * size

    def register_page_content(self, record: SiteRecord) -> None:
        page = record.page
        self.content_registry[(page.hostname, page.root_path)] = (
            page.root_size_bytes
        )
        for resource in page.resources:
            self.content_registry[(resource.hostname, resource.path)] = (
                resource.size_bytes
            )

    # -- PKI ----------------------------------------------------------------

    @property
    def authorities(self) -> List[CertificateAuthority]:
        return [self.root_ca] + list(self.issuers.values())

    def issuer(self, name: str) -> CertificateAuthority:
        authority = self.issuers.get(name)
        if authority is None:
            authority = CertificateAuthority(
                name,
                rng=np.random.default_rng(
                    (self.config.seed + abs(hash(name))) % (2**32)
                ),
                policy=IssuancePolicy(max_san_names=10_000),
                parent=self.root_ca,
            )
            self.issuers[name] = authority
        return authority

    # -- resolver / engine plumbing ------------------------------------------

    def make_resolver(
        self, median_latency_ms: float = 20.0
    ) -> CachingResolver:
        return CachingResolver(
            self.network.loop,
            self.dns_authority,
            rng=self.rng,
            median_latency_ms=median_latency_ms,
        )

    # -- convenience --------------------------------------------------------

    @property
    def site_records(self) -> List[SiteRecord]:
        return [hosted.record for hosted in self.sites]

    def hosted(self, domain: str) -> HostedSite:
        for site in self.sites:
            if site.record.entry.domain == domain:
                return site
        raise KeyError(domain)


def _provider_server(
    world: SyntheticWorld, profile: profiles.ProviderProfile
) -> H2Server:
    """Get or create the (single) edge server fleet for a provider."""
    server = world.provider_servers.get(profile.name)
    if server is not None:
        return server
    ips = world.allocator.allocate(profile.ip_pool_size)
    host = world.network.add_host(
        Host(f"edge-{profile.asn}", CDN_REGION, ips)
    )
    for ip in ips:
        world.asdb.register(f"{ip}/32", profile.asn, profile.name)
    config = ServerConfig(
        send_origin_frames=False,
        think_time_ms=float(world.rng.uniform(40.0, 140.0)),
        handler=world.handler,
        supports_h3=profile.supports_h3,
    )
    server = H2Server(world.network, host, config,
                      retain_connections=False)
    server.listen_all(443)
    server.listen_plain_all(80)
    if profile.supports_h3:
        server.listen_quic_all(443)
    world.provider_hosts[profile.name] = host
    world.provider_servers[profile.name] = server
    return server


def _tail_cdn_server(world: SyntheticWorld, asn: int, org: str) -> H2Server:
    server = world.tail_cdn_servers.get(asn)
    if server is not None:
        return server
    ips = world.allocator.allocate(3)
    host = world.network.add_host(Host(f"tailcdn-{asn}", TAIL_REGION, ips))
    for ip in ips:
        world.asdb.register(f"{ip}/32", asn, org)
    config = ServerConfig(
        send_origin_frames=False,
        think_time_ms=float(world.rng.uniform(60.0, 220.0)),
        handler=world.handler,
    )
    server = H2Server(world.network, host, config,
                      retain_connections=False)
    server.listen_all(443)
    server.listen_plain_all(80)
    world.tail_cdn_servers[asn] = server
    return server


def _zone_for_domain(world: SyntheticWorld, domain: str) -> Zone:
    zone = world.dns_authority.zone_for(domain)
    if zone is not None and zone.origin == domain:
        return zone
    return world.dns_authority.add_zone(Zone(domain))


def _install_popular_hosts(world: SyntheticWorld) -> None:
    """Stand up the Table 7/9 hostnames on their providers."""
    ttl = 300_000.0
    for popular in profiles.POPULAR_THIRD_PARTIES:
        profile = profiles.provider_by_name(popular.provider)
        server = _provider_server(world, profile)
        pool = server.host.addresses
        count = min(profile.dns_answer_size + 1, len(pool))
        picked = list(
            world.rng.choice(len(pool), size=count, replace=False)
        )
        ips = [pool[i] for i in picked]

        issuer = world.issuer(profile.issuer)
        certificate = issuer.issue(popular.hostname, (popular.hostname,))
        server.config.chains.append(issuer.chain_for(certificate))
        server.config.serves.append(popular.hostname)

        domain = ".".join(popular.hostname.split(".")[-2:])
        zone = _zone_for_domain(world, domain)
        zone.add_a(popular.hostname, ips, ttl=ttl)
        if profile.supports_h3:
            # RFC 9460 service discovery: big providers publish HTTPS
            # records so h3-capable clients skip the Alt-Svc round.
            zone.add_https(popular.hostname, alpn=("h3", "h2"), ttl=ttl)
        world.popular_hostnames[popular.hostname] = popular.provider


def _install_tail_third_parties(
    world: SyntheticWorld, generator: PageGenerator
) -> None:
    for tail in generator.tail_third_parties:
        server = _tail_cdn_server(world, tail.asn, tail.org)
        issuer = world.issuer("Let's Encrypt (R3)")
        certificate = issuer.issue(tail.hostname, (tail.hostname,))
        server.config.chains.append(issuer.chain_for(certificate))
        server.config.serves.append(tail.hostname)
        if world.rng.random() < 0.15:
            server.config.h1_only_hosts = frozenset(
                server.config.h1_only_hosts | {tail.hostname}
            )
        domain = ".".join(tail.hostname.split(".")[-2:])
        zone = _zone_for_domain(world, domain)
        zone.add_a(tail.hostname, server.host.addresses[:1], ttl=300_000.0)


def _install_site(world: SyntheticWorld, record: SiteRecord) -> HostedSite:
    issuer = world.issuer(record.issuer)
    certificate = issuer.issue(
        record.root_hostname,
        record.cert_san,
        include_subject_in_san=bool(record.cert_san),
    )
    chain = issuer.chain_for(certificate)
    # Shards the site certificate does not cover still need to be
    # servable -- in the wild they carry their own certificates; that
    # separateness is exactly what blocks coalescing (§2.2).
    extra_chains = [
        issuer.chain_for(issuer.issue(shard, (shard,)))
        for shard in record.shards
        if not certificate.covers(shard)
    ]
    if not certificate.covers(record.entry.domain):
        extra_chains.append(
            issuer.chain_for(
                issuer.issue(record.entry.domain, (record.entry.domain,))
            )
        )

    if record.self_hosted:
        ip = world.allocator.allocate(1)
        host = world.network.add_host(
            Host(f"origin-{record.entry.domain}", TAIL_REGION, ip)
        )
        world.asdb.register(f"{ip[0]}/32", record.tail_asn, record.tail_org)
        config = ServerConfig(
            chains=[chain] + extra_chains,
            serves=list(record.own_hostnames()),
            send_origin_frames=False,
            alpn_protocols=(
                ("http/1.1",) if record.h1_only else ("h2", "http/1.1")
            ),
            think_time_ms=float(world.rng.uniform(120.0, 380.0)),
            handler=world.handler,
        )
        server = H2Server(world.network, host, config,
                          retain_connections=False)
        server.listen_all(443)
        server.listen_plain_all(80)
        root_ips = list(ip)
        shard_ips = {shard: list(ip) for shard in record.shards}
    else:
        profile = profiles.provider_by_name(record.provider)
        server = _provider_server(world, profile)
        server.config.chains.append(chain)
        server.config.chains.extend(extra_chains)
        server.config.serves.extend(record.own_hostnames())
        if record.h1_only:
            server.config.h1_only_hosts = frozenset(
                server.config.h1_only_hosts | set(record.own_hostnames())
            )
        pool = server.host.addresses
        answer = min(profile.dns_answer_size, len(pool))
        picked = world.rng.choice(len(pool), size=answer, replace=False)
        root_ips = [pool[i] for i in picked]
        shard_ips = {}
        for shard in record.shards:
            if world.rng.random() < 0.5:
                shard_ips[shard] = list(root_ips)
            else:
                picked = world.rng.choice(
                    len(pool), size=answer, replace=False
                )
                shard_ips[shard] = [pool[i] for i in picked]

    zone = _zone_for_domain(world, record.entry.domain)
    zone.add_a(record.root_hostname, root_ips)
    zone.add_a(record.entry.domain, root_ips)
    for shard, ips in shard_ips.items():
        zone.add_a(shard, ips)

    world.register_page_content(record)
    hosted = HostedSite(
        record=record,
        certificate=certificate,
        server=server,
        root_ips=root_ips,
        shard_ips=shard_ips,
    )
    world.sites.append(hosted)
    return hosted


def build_world(
    config: Optional[DatasetConfig] = None,
    records: Optional[Sequence[SiteRecord]] = None,
) -> SyntheticWorld:
    """Generate (unless ``records`` is given) and materialize a world."""
    config = config or DatasetConfig()
    world = SyntheticWorld(config)
    generator = PageGenerator(config)
    if records is None:
        records = generator.generate_all()
    _install_popular_hosts(world)
    _install_tail_third_parties(world, generator)
    for record in records:
        _install_site(world, record)
    return world
