"""The WPT-style crawler.

Drives the browser engine over every accessible site in a synthetic
world, one fresh browser session per page (no DNS or resource cache
carry-over, matching §3.1), and collects HAR archives.  Inaccessible
sites -- the paper lost 36.5% of attempts to non-200s and CAPTCHAs --
are recorded as failed page loads without being fetched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.browser import BrowserContext, BrowserEngine, ChromiumPolicy
from repro.browser.policy import CoalescingPolicy
from repro.browser.retry import RetryPolicy
from repro.dataset.world import SyntheticWorld
from repro.obs.phases import NULL_PHASES, PhaseRecorder
from repro.telemetry import Telemetry
from repro.web.har import HarArchive, HarPage


@dataclass
class CrawlResult:
    """All archives from one crawl, attempted and successful."""

    archives: List[HarArchive] = field(default_factory=list)
    #: Memo for :attr:`successes`, keyed by archive count so appends
    #: (the only way crawls and merges grow a result) invalidate it.
    _successes_memo: Optional[Tuple[int, List[HarArchive]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def attempted(self) -> int:
        return len(self.archives)

    @property
    def successes(self) -> List[HarArchive]:
        """Successful archives; computed once per result size.

        The CLI and :mod:`~repro.dataset.characterize` consult this
        repeatedly per crawl, so it must not rebuild the filtered list
        on every access.
        """
        memo = self._successes_memo
        if memo is None or memo[0] != len(self.archives):
            memo = (
                len(self.archives),
                [a for a in self.archives if a.page.success],
            )
            self._successes_memo = memo
        return memo[1]

    @property
    def success_count(self) -> int:
        return len(self.successes)

    @property
    def total_requests(self) -> int:
        return sum(a.request_count for a in self.successes)

    def save(self, path) -> int:
        """Write the crawl as JSON-lines of HAR archives.

        The paper's pipeline stored per-page HAR files in a bucket
        (§3.1); this is the single-file equivalent.  Returns the
        number of archives written.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for archive in self.archives:
                handle.write(archive.to_json())
                handle.write("\n")
        return len(self.archives)

    @classmethod
    def load(cls, path) -> "CrawlResult":
        """Read a crawl back from :meth:`save` output."""
        archives = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    archives.append(HarArchive.from_json(line))
        return cls(archives=archives)


class Crawler:
    """Loads every site with a given browser policy."""

    def __init__(
        self,
        world: SyntheticWorld,
        policy: Optional[CoalescingPolicy] = None,
        speculative_rate: float = 0.12,
        dns_latency_ms: float = 48.0,
        seed: int = 7,
        telemetry: Optional[Telemetry] = None,
        alpn: str = "h2",
        retry_policy: Optional["RetryPolicy"] = None,
        retry_seed: Optional[int] = None,
    ) -> None:
        self.world = world
        self.policy = policy or ChromiumPolicy()
        self.rng = np.random.default_rng(seed)
        self.telemetry = telemetry
        self.alpn = tuple(
            p.strip() for p in alpn.split(",") if p.strip()
        ) or ("h2",)
        self.resolver = world.make_resolver(median_latency_ms=dns_latency_ms)
        if "h3" in self.alpn:
            # h3-capable clients also ask for HTTPS/SVCB records
            # (piggybacked on the A query; no extra latency).
            self.resolver.query_https_records = True
        phases = NULL_PHASES
        if telemetry is not None:
            self.resolver.tracer = telemetry.tracer
            self.resolver.audit = telemetry.audit
            # Phase histograms ride the shared metrics registry, so
            # they shard-merge (and stay --jobs-deterministic) for free.
            phases = PhaseRecorder(telemetry.metrics,
                                   policy=self.policy.name)
            self.resolver.phases = phases
        self.context = BrowserContext(
            network=world.network,
            client_host=world.client_host,
            resolver=self.resolver,
            trust_store=world.trust_store,
            authorities=world.authorities,
            policy=self.policy,
            rng=self.rng,
            speculative_rate=speculative_rate,
            tls12_rate=0.45,
            asdb=world.asdb,
            telemetry=telemetry,
            alpn=self.alpn,
            phases=phases,
        )
        if retry_policy is not None:
            # Chaos runs pin an explicit policy; the separate retry
            # RNG keeps jitter draws off the decision stream so a
            # retry-enabled crawl with no faults stays byte-identical.
            self.context.retry_policy = retry_policy
            if retry_seed is not None:
                self.context.retry_rng = np.random.default_rng(retry_seed)
        self.engine = BrowserEngine(self.context)

    def crawl_site(self, hosted) -> HarArchive:
        """Load one site with fresh caches; failures become failed pages."""
        record = hosted.record
        telemetry = self.telemetry
        span = None
        if telemetry is not None and telemetry.tracer.enabled:
            span = telemetry.tracer.begin(
                "site", category="crawler", url=record.page.url,
                rank=record.scaled_rank, accessible=record.accessible,
            )
        if not record.accessible:
            # Non-200 / CAPTCHA: the crawler never got a usable page.
            archive = HarArchive(
                page=HarPage(
                    url=record.page.url,
                    hostname=record.root_hostname,
                    rank=record.scaled_rank,
                    success=False,
                    failure_reason="non-200 or CAPTCHA",
                )
            )
            if telemetry is not None:
                if span is not None:
                    telemetry.tracer.end(span, success=False, requests=0)
                telemetry.metrics.counter("crawler.pages_attempted").inc()
            return archive
        self.engine.new_session()
        archive = self.engine.load_blocking(record.page)
        if telemetry is not None:
            if span is not None:
                telemetry.tracer.end(
                    span, success=archive.page.success,
                    requests=len(archive.entries),
                )
            self._absorb_page_metrics(archive)
        return archive

    def _absorb_page_metrics(self, archive: HarArchive) -> None:
        """Fold the finished page's layer counters into the crawl-level
        registry and record its load-time histogram."""
        metrics = self.telemetry.metrics
        if self.engine.loads:
            metrics.absorb(self.engine.loads[-1].pool.stats.registry)
        metrics.counter("crawler.pages_attempted").inc()
        if archive.page.success:
            metrics.counter("crawler.pages_succeeded").inc()
            metrics.histogram("page.load_ms").observe(archive.page.on_load)
            metrics.histogram("page.requests").observe(len(archive.entries))

    def crawl(
        self,
        limit: Optional[int] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CrawlResult:
        result = CrawlResult()
        sites = self.world.sites[:limit] if limit else self.world.sites
        total = len(sites)
        for index, hosted in enumerate(sites):
            result.archives.append(self.crawl_site(hosted))
            if progress is not None:
                progress(index + 1, total)
        if self.telemetry is not None:
            self.telemetry.metrics.absorb(self.resolver.stats.registry)
        return result
