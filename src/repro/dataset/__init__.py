"""Synthetic web dataset: generation, crawling, characterization.

The paper crawled 315,796 of the Tranco top-500K sites (§3.1).  This
package synthesizes a web whose *marginal statistics* are calibrated to
the paper's published tables -- provider request shares (Table 2),
protocol mix (Table 3), certificate issuers (Table 4), content types
(Tables 5-6), popular subresource hostnames (Tables 7 and 9), per-page
request/DNS/TLS medians (Table 1) -- then crawls it with the real
browser engine over the real protocol stack, and recomputes every
table from the resulting HAR archives.
"""

from repro.dataset.profiles import (
    PROVIDERS,
    ProviderProfile,
    CONTENT_TYPE_WEIGHTS,
    TAIL_ISSUERS,
    POPULAR_THIRD_PARTIES,
    PopularHostname,
)
from repro.dataset.tranco import TrancoList
from repro.dataset.generator import DatasetConfig, SiteRecord, PageGenerator
from repro.dataset.world import SyntheticWorld, build_world
from repro.dataset.crawler import Crawler, CrawlResult
from repro.dataset.shard import (
    CrawlParams,
    ParallelCrawler,
    ShardResult,
    ShardSpec,
    default_shard_count,
    derive_seed,
    plan_shards,
)
from repro.dataset.cache import CrawlCache, cache_key, crawl_cached
from repro.dataset import characterize

__all__ = [
    "PROVIDERS",
    "ProviderProfile",
    "CONTENT_TYPE_WEIGHTS",
    "TAIL_ISSUERS",
    "POPULAR_THIRD_PARTIES",
    "PopularHostname",
    "TrancoList",
    "DatasetConfig",
    "SiteRecord",
    "PageGenerator",
    "SyntheticWorld",
    "build_world",
    "Crawler",
    "CrawlResult",
    "CrawlParams",
    "ParallelCrawler",
    "ShardResult",
    "ShardSpec",
    "default_shard_count",
    "derive_seed",
    "plan_shards",
    "CrawlCache",
    "cache_key",
    "crawl_cached",
    "characterize",
]
