"""Synthetic site generation.

:class:`PageGenerator` plans every site in the synthetic web: which
provider hosts it, its sharded subdomains, which popular and tail
third parties it embeds, the full subresource dependency graph, and the
certificate SAN contents.  The plans are pure data;
:mod:`repro.dataset.world` materializes them into servers, zones, and
signed certificates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset import profiles
from repro.dataset.tranco import TrancoEntry, TrancoList
from repro.web.content import CONTENT_TYPE_SIZES, ContentType
from repro.web.page import FetchMode, Subresource, WebPage

#: Shard subdomain labels, in the order sites adopt them.
SHARD_LABELS = ("static", "img", "cdn", "assets", "media")

#: ASN base for self-hosted tail sites (one AS per site).
TAIL_SITE_ASN_BASE = 65_000_000
#: ASN base for shared tail CDN/third-party providers.
TAIL_CDN_ASN_BASE = 64_512


@dataclass(frozen=True)
class TailThirdParty:
    """A long-tail third-party host shared across sites."""

    hostname: str
    asn: int
    org: str


@dataclass
class DatasetConfig:
    """Tunables for dataset synthesis (defaults reproduce the paper)."""

    site_count: int = 1000
    #: The paper's rank space; synthetic ranks scale into it for
    #: Table 1 bucketing.
    rank_space: int = 500_000
    seed: int = 2022
    subresource_sigma: float = 0.75
    max_subresources: int = 400
    min_subresources: int = 5
    mean_discovery_delay_ms: float = 45.0
    anonymous_fetch_rate: float = profiles.ANONYMOUS_FETCH_RATE
    insecure_rate: float = 0.0147
    #: Probability a site's certificate carries a wildcard that covers
    #: its own shards (those sites need no cert changes for shards).
    shard_wildcard_cert_rate: float = 0.55
    #: Probability an explicit (non-wildcard) shard name is already in
    #: the certificate SAN.
    shard_in_san_rate: float = 0.40
    zero_san_rate: float = 0.035
    medium_san_rate: float = 0.012
    huge_san_rate: float = 0.0016
    tail_host_h1_rate: float = 0.22
    #: Number of shared tail third-party hosts and their AS pool.
    tail_third_party_count: int = 60
    tail_cdn_as_count: int = 24
    #: Mean tail third parties per page.
    tail_third_parties_per_page: float = 5.5
    #: Popular (Table 7/9) hosts are mostly loaded through plain
    #: <script>/<link> tags; their fetch()/crossorigin share is lower
    #: than the general third-party rate.
    popular_anonymous_rate: float = 0.12
    #: Per-hostname usage-rate overrides, e.g. boost the deployment
    #: third party so the §5 sample is large enough at small N.
    popular_usage_overrides: Dict[str, float] = field(default_factory=dict)
    #: Per-provider site-share overrides (fractions of all sites).
    provider_site_share_overrides: Dict[str, float] = field(
        default_factory=dict
    )

    def tranco(self) -> TrancoList:
        return TrancoList(self.site_count)

    def scaled_rank(self, rank: int) -> int:
        """Map a synthetic rank into the paper's 500K rank space."""
        return max(1, round(rank * self.rank_space / self.site_count))


@dataclass
class SiteRecord:
    """Everything the world builder needs to materialize one site."""

    entry: TrancoEntry
    #: Provider name from :data:`profiles.PROVIDERS`, or "" if the
    #: site is self-hosted on its own tail AS.
    provider: str
    tail_asn: int
    tail_org: str
    shards: Tuple[str, ...]
    page: WebPage
    cert_san: Tuple[str, ...]
    issuer: str
    accessible: bool
    h1_only: bool
    scaled_rank: int

    @property
    def root_hostname(self) -> str:
        return self.entry.www_hostname

    @property
    def self_hosted(self) -> bool:
        return self.provider == ""

    def own_hostnames(self) -> Tuple[str, ...]:
        return (self.root_hostname, self.entry.domain) + self.shards


class PageGenerator:
    """Plans sites deterministically from a seeded RNG."""

    def __init__(self, config: Optional[DatasetConfig] = None) -> None:
        self.config = config or DatasetConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.tail_third_parties = self._make_tail_third_parties()
        self._provider_names = [p.name for p in profiles.PROVIDERS]
        self._provider_site_shares = np.array([
            self.config.provider_site_share_overrides.get(
                p.name, p.site_share
            )
            for p in profiles.PROVIDERS
        ])
        self._tail_site_share = max(
            0.0, 1.0 - float(self._provider_site_shares.sum())
        )
        self._global_types = [t for t, _ in profiles.CONTENT_TYPE_WEIGHTS]
        weights = np.array([w for _, w in profiles.CONTENT_TYPE_WEIGHTS])
        self._global_type_weights = weights / weights.sum()
        # Normalized probability arrays per content mix; building and
        # renormalizing the same np array for every resource dominates
        # planning time and always yields the same bits.
        self._mix_cache: Dict[
            Tuple[Tuple[ContentType, float], ...],
            Tuple[List[ContentType], np.ndarray],
        ] = {}

    # -- shared pools ------------------------------------------------------

    def _make_tail_third_parties(self) -> Tuple[TailThirdParty, ...]:
        config = self.config
        out = []
        for index in range(config.tail_third_party_count):
            as_index = index % config.tail_cdn_as_count
            out.append(
                TailThirdParty(
                    hostname=f"cdn{index:02d}.tailcdn{as_index:02d}.net",
                    asn=TAIL_CDN_ASN_BASE + as_index,
                    org=f"Tail CDN {as_index:02d}",
                )
            )
        return tuple(out)

    # -- sampling helpers ------------------------------------------------------

    def _pick_provider(self) -> str:
        """Provider name, or "" for self-hosted."""
        roll = self.rng.random()
        cumulative = 0.0
        for name, share in zip(self._provider_names,
                               self._provider_site_shares):
            cumulative += share
            if roll < cumulative:
                return name
        return ""

    def _normalized_mix(
        self, mix: Tuple[Tuple[ContentType, float], ...]
    ) -> Tuple[List[ContentType], np.ndarray]:
        cached = self._mix_cache.get(mix)
        if cached is None:
            weights = np.array([w for _, w in mix])
            cached = ([t for t, _ in mix], weights / weights.sum())
            self._mix_cache[mix] = cached
        return cached

    def _content_type_for(
        self, provider: str, popular: Optional[profiles.PopularHostname]
    ) -> ContentType:
        if popular is not None:
            types, weights = self._normalized_mix(popular.content)
            return types[self.rng.choice(len(types), p=weights)]
        profile = None
        if provider:
            profile = profiles.provider_by_name(provider)
        if profile is not None and profile.content_mix is not None:
            types, weights = self._normalized_mix(profile.content_mix)
            return types[self.rng.choice(len(types), p=weights)]
        return self._global_types[
            self.rng.choice(len(self._global_types),
                            p=self._global_type_weights)
        ]

    def _bucket_index(self, scaled_rank: int) -> int:
        bucket = (scaled_rank - 1) // 100_000
        return min(bucket, len(profiles.SUCCESS_RATE_BY_BUCKET) - 1)

    def _subresource_count(self, scaled_rank: int) -> int:
        config = self.config
        median = profiles.MEDIAN_REQUESTS_BY_BUCKET[
            self._bucket_index(scaled_rank)
        ]
        count = int(round(float(
            np.exp(self.rng.normal(np.log(median),
                                   config.subresource_sigma))
        )))
        return int(np.clip(count, config.min_subresources,
                           config.max_subresources))

    def _size_for(self, content_type: ContentType) -> int:
        base = CONTENT_TYPE_SIZES[content_type]
        return max(200, int(base * self.rng.lognormal(0.0, 0.5)))

    # -- the main act -----------------------------------------------------------

    def generate(self, entry: TrancoEntry) -> SiteRecord:
        config = self.config
        rng = self.rng
        scaled_rank = config.scaled_rank(entry.rank)
        provider = self._pick_provider()

        # Own shards on the same provider/host.
        shard_count = rng.choice(5, p=[0.25, 0.30, 0.20, 0.15, 0.10])
        shards = tuple(
            f"{SHARD_LABELS[i]}.{entry.domain}" for i in range(shard_count)
        )

        # Popular third parties, by usage rate.
        populars = [
            popular for popular in profiles.POPULAR_THIRD_PARTIES
            if rng.random() < config.popular_usage_overrides.get(
                popular.hostname, popular.usage_rate
            )
        ]

        # Long-tail third parties from the shared pool.
        tail_count = min(
            rng.poisson(config.tail_third_parties_per_page),
            len(self.tail_third_parties),
        )
        tail_indices = rng.choice(
            len(self.tail_third_parties), size=tail_count, replace=False
        ) if tail_count else []
        tails = [self.tail_third_parties[i] for i in tail_indices]

        resources = self._build_resources(
            entry, provider, shards, populars, tails, scaled_rank
        )
        page = WebPage(
            hostname=entry.www_hostname,
            root_size_bytes=self._size_for(ContentType.TEXT_HTML),
            resources=resources,
            rank=scaled_rank,
        )

        cert_san, issuer = self._plan_certificate(entry, provider, shards)
        bucket = self._bucket_index(scaled_rank)
        accessible = bool(
            rng.random() < profiles.SUCCESS_RATE_BY_BUCKET[bucket]
        )
        h1_only = False
        if provider == "":
            h1_only = bool(rng.random() < config.tail_host_h1_rate)
        else:
            h1_only = bool(
                rng.random() < profiles.provider_by_name(provider).h1_only_rate
            )

        return SiteRecord(
            entry=entry,
            provider=provider,
            tail_asn=TAIL_SITE_ASN_BASE + entry.rank,
            tail_org=f"Self-hosted {entry.domain}",
            shards=shards,
            page=page,
            cert_san=cert_san,
            issuer=issuer,
            accessible=accessible,
            h1_only=h1_only,
            scaled_rank=scaled_rank,
        )

    # -- resources ------------------------------------------------------------

    def _build_resources(
        self,
        entry: TrancoEntry,
        provider: str,
        shards: Sequence[str],
        populars: Sequence[profiles.PopularHostname],
        tails: Sequence[TailThirdParty],
        scaled_rank: int,
    ) -> List[Subresource]:
        config = self.config
        rng = self.rng
        budget = self._subresource_count(scaled_rank)

        # (hostname, popular-or-None, provider-name) request slots.
        slots: List[Tuple[str, Optional[profiles.PopularHostname], str]] = []

        root_share = rng.uniform(0.25, 0.45)
        root_requests = max(2, int(budget * root_share))
        slots.extend(
            (entry.www_hostname, None, provider) for _ in range(root_requests)
        )
        for shard in shards:
            for _ in range(max(1, rng.poisson(6.0))):
                slots.append((shard, None, provider))
        for popular in populars:
            for _ in range(max(1, rng.poisson(popular.requests_per_page))):
                slots.append((popular.hostname, popular, popular.provider))
        for tail in tails:
            for _ in range(max(1, rng.poisson(2.5))):
                slots.append((tail.hostname, None, ""))

        # Trim or pad toward the budget (keep at least one request per
        # hostname by trimming from the root's surplus first).
        if len(slots) > budget:
            surplus = len(slots) - budget
            root_slots = [s for s in slots if s[0] == entry.www_hostname]
            removable = min(surplus, max(0, len(root_slots) - 2))
            if removable:
                kept_roots = root_slots[:-removable]
                others = [s for s in slots if s[0] != entry.www_hostname]
                slots = kept_roots + others
        elif len(slots) < budget:
            slots.extend(
                (entry.www_hostname, None, provider)
                for _ in range(budget - len(slots))
            )

        # Interleave hostnames so dependency chains cross hosts the way
        # real pages do (a CSS file on one shard pulling fonts from
        # another provider), rather than staying host-local.
        order = rng.permutation(len(slots))
        slots = [slots[int(i)] for i in order]

        resources: List[Subresource] = []
        discoverable_paths: List[str] = []
        for index, (hostname, popular, slot_provider) in enumerate(slots):
            content_type = self._content_type_for(slot_provider, popular)
            path = f"/r{index:04d}/{content_type.name.lower()}" \
                   f".{content_type.value.split('/')[-1][:4]}"

            parent: Optional[str] = None
            if discoverable_paths and rng.random() < 0.62:
                parent = discoverable_paths[
                    # Bias toward recent discoveries: deeper chains,
                    # like real pages' script-loads-script cascades.
                    rng.integers(max(0, len(discoverable_paths) - 3),
                                 len(discoverable_paths))
                ]

            third_party = hostname != entry.www_hostname and \
                hostname not in shards
            fetch_mode = FetchMode.NORMAL
            if third_party and (
                content_type.is_script
                or content_type is ContentType.APPLICATION_JSON
                or content_type is ContentType.FONT_WOFF2
            ):
                anonymous_rate = (
                    config.popular_anonymous_rate if popular is not None
                    else config.anonymous_fetch_rate
                )
                if rng.random() < anonymous_rate:
                    fetch_mode = (
                        FetchMode.SCRIPT_FETCH
                        if content_type is ContentType.APPLICATION_JSON
                        else FetchMode.CORS_ANONYMOUS
                    )

            secure = bool(rng.random() >= config.insecure_rate)

            resource = Subresource(
                hostname=hostname,
                path=path,
                content_type=content_type,
                size_bytes=self._size_for(content_type),
                parent=parent,
                discovery_delay_ms=float(
                    rng.exponential(config.mean_discovery_delay_ms)
                ),
                fetch_mode=fetch_mode,
                secure=secure,
            )
            resources.append(resource)
            if content_type.can_discover_children:
                discoverable_paths.append(path)
        return resources

    # -- certificates -----------------------------------------------------------

    def _plan_certificate(
        self,
        entry: TrancoEntry,
        provider: str,
        shards: Sequence[str],
    ) -> Tuple[Tuple[str, ...], str]:
        config = self.config
        rng = self.rng

        if provider:
            issuer = profiles.provider_by_name(provider).issuer
        else:
            names = [name for name, _ in profiles.TAIL_ISSUERS]
            weights = np.array([w for _, w in profiles.TAIL_ISSUERS])
            issuer = names[rng.choice(len(names),
                                      p=weights / weights.sum())]

        roll = rng.random()
        if roll < config.zero_san_rate:
            return (), issuer

        san: List[str] = [entry.www_hostname, entry.domain]
        if shards:
            if rng.random() < config.shard_wildcard_cert_rate:
                san.append(f"*.{entry.domain}")
            else:
                for shard in shards:
                    if rng.random() < config.shard_in_san_rate:
                        san.append(shard)

        roll = rng.random()
        if roll < config.huge_san_rate:
            extra = int(rng.integers(250, 1900))
            san.extend(
                f"alt{j:04d}.customer{entry.rank:06d}.net"
                for j in range(extra)
            )
        elif roll < config.huge_san_rate + config.medium_san_rate:
            extra = int(rng.integers(15, 100))
            san.extend(
                f"alt{j:04d}.customer{entry.rank:06d}.net"
                for j in range(extra)
            )
        return tuple(san), issuer

    def generate_all(self) -> List[SiteRecord]:
        return [self.generate(entry) for entry in self.config.tranco()]
