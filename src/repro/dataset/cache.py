"""A content-addressed, reusable crawl cache.

Every crawl is a pure function of ``(DatasetConfig, policy name,
crawler params, shard layout)`` -- the simulation is deterministic --
so its merged HAR archives can be persisted once and reused by every
command that needs the same world.  The cache key is a SHA-256 digest
over the canonical JSON of those inputs; the payload is the JSONL
format of :meth:`~repro.dataset.crawler.CrawlResult.save`, which is
exactly the paper pipeline's bucket of per-page HAR files (§3.1)
collapsed into one file per crawl.

The cache directory defaults to ``$REPRO_CRAWL_CACHE`` when set, else
``~/.cache/repro/crawls`` (honouring ``$XDG_CACHE_HOME``).  Entries
are immutable: invalidation is deleting the file (or the directory),
or changing any keyed input, which addresses a different entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.dataset.crawler import CrawlResult
from repro.dataset.generator import DatasetConfig
from repro.dataset.shard import CrawlParams

#: Bump when the archive format or crawl semantics change, so stale
#: entries from older code can never be mistaken for current ones.
CACHE_FORMAT_VERSION = 1

#: Environment override for the cache root.
CACHE_ENV_VAR = "REPRO_CRAWL_CACHE"


def default_cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "crawls"


def cache_key(
    config: DatasetConfig,
    params: CrawlParams,
    shard_count: int,
) -> str:
    """Content address for one crawl definition."""
    params_doc = dataclasses.asdict(params)
    if params_doc.get("alpn") == "h2":
        # The pre-h3 cache format had no ALPN dimension; dropping the
        # default keeps existing cache entries addressable.
        del params_doc["alpn"]
    document = {
        "version": CACHE_FORMAT_VERSION,
        "config": dataclasses.asdict(config),
        "params": params_doc,
        "shard_count": int(shard_count),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


@dataclass
class CacheEntryInfo:
    """One cache entry as seen on disk."""

    key: str
    path: Path
    size_bytes: int
    modified_at: float


@dataclass
class CacheStats:
    """Disk-level summary of a cache directory."""

    root: Path
    entries: List[CacheEntryInfo] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)


class CrawlCache:
    """Filesystem store of crawl results, addressed by crawl inputs."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / f"crawl-{key}.jsonl"

    def has(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def load(self, key: str) -> Optional[CrawlResult]:
        """The cached result for ``key``, or ``None`` on a miss (or an
        unreadable/corrupt entry, which is dropped)."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            return CrawlResult.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            self.invalidate(key)
            return None

    def store(self, key: str, result: CrawlResult) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the
        entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        result.save(tmp)
        os.replace(tmp, path)
        return path

    def invalidate(self, key: str) -> bool:
        """Delete one entry; True if it existed."""
        path = self.path_for(key)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("crawl-*.jsonl"):
                path.unlink()
                removed += 1
        return removed

    def entries(self) -> List[CacheEntryInfo]:
        """Every entry on disk, newest first (stable: ties break on
        key, so listings are deterministic)."""
        found: List[CacheEntryInfo] = []
        if self.root.is_dir():
            for path in self.root.glob("crawl-*.jsonl"):
                stat = path.stat()
                key = path.stem[len("crawl-"):]
                found.append(CacheEntryInfo(
                    key=key, path=path, size_bytes=stat.st_size,
                    modified_at=stat.st_mtime,
                ))
        found.sort(key=lambda e: (-e.modified_at, e.key))
        return found

    def stats(self) -> CacheStats:
        """Disk usage summary for the whole cache directory."""
        return CacheStats(root=self.root, entries=self.entries())

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_age_days: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[CacheEntryInfo]:
        """Delete entries beyond a count budget and/or older than a
        cutoff; returns what was removed (oldest victims first).

        With neither bound given, nothing is removed (use
        :meth:`clear` to empty the cache wholesale).
        """
        entries = self.entries()
        victims: List[CacheEntryInfo] = []
        keep: List[CacheEntryInfo] = entries
        if max_age_days is not None:
            if max_age_days < 0:
                raise ValueError(f"bad max age {max_age_days}")
            cutoff = (now if now is not None else time.time()) \
                - max_age_days * 86_400.0
            keep = [e for e in keep if e.modified_at >= cutoff]
            victims.extend(e for e in entries if e.modified_at < cutoff)
        if max_entries is not None:
            if max_entries < 0:
                raise ValueError(f"bad entry budget {max_entries}")
            victims.extend(keep[max_entries:])
            keep = keep[:max_entries]
        for victim in sorted(victims, key=lambda e: e.modified_at):
            victim.path.unlink(missing_ok=True)
        return sorted(victims, key=lambda e: (e.modified_at, e.key))


def crawl_cached(
    config: DatasetConfig,
    params: Optional[CrawlParams] = None,
    shard_count: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[CrawlCache] = None,
    refresh: bool = False,
    progress=None,
) -> Tuple[CrawlResult, bool]:
    """Load the crawl from cache or run it (and store it).

    Returns ``(result, hit)`` where ``hit`` says whether the crawl was
    served from the cache.  ``cache=None`` disables caching entirely.
    """
    from repro.dataset.shard import ParallelCrawler

    crawler = ParallelCrawler(
        config, params=params, shard_count=shard_count, jobs=jobs
    )
    key = cache_key(config, crawler.params, crawler.shard_count)
    if cache is not None and not refresh:
        result = cache.load(key)
        if result is not None:
            return result, True
    result = crawler.crawl(progress=progress)
    if cache is not None:
        cache.store(key, result)
    return result, False
