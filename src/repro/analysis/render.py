"""Plain-text table and figure rendering.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_pct(fraction: float, digits: int = 2) -> str:
    return f"{fraction * 100:.{digits}f}%"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(row):
        return "  ".join(
            value.ljust(widths[index]) for index, value in enumerate(row)
        ).rstrip()

    rule = "-" * min(78, sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(row) for row in cells)
    out.append(rule)
    return "\n".join(out)


def render_cdf(
    title: str,
    series: Sequence[Tuple[str, Sequence[float]]],
    probes: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90),
) -> str:
    """Compare CDFs by printing their values at probe quantiles."""
    import numpy as np

    headers = ["series"] + [f"p{int(q * 100)}" for q in probes] + ["n"]
    rows = []
    for name, values in series:
        if len(values):
            quantiles = [
                f"{float(np.percentile(values, q * 100)):.1f}"
                for q in probes
            ]
        else:
            quantiles = ["-"] * len(probes)
        rows.append([name] + quantiles + [len(values)])
    return render_table(title, headers, rows)


def render_series(
    title: str,
    x_label: str,
    columns: Sequence[Tuple[str, Sequence[float]]],
    x_values: Sequence[object],
) -> str:
    """A longitudinal table: one row per x value, one column per series."""
    headers = [x_label] + [name for name, _ in columns]
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for _, values in columns:
            row.append(
                f"{values[index]:.1f}"
                if isinstance(values[index], float) else values[index]
            )
        rows.append(row)
    return render_table(title, headers, rows)
