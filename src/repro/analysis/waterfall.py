"""ASCII waterfall rendering for HAR timelines (Figure 2 style).

Each request renders as one row; the bar shows its phases:

* ``.`` blocked, ``D`` DNS, ``C`` TCP connect, ``S`` TLS,
  ``#`` send/wait/receive (the transfer itself).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.web.har import HarArchive, HarEntry


def _bar(entry: HarEntry, start: float, scale: float, width: int) -> str:
    chars = [" "] * width

    def fill(offset: float, duration: float, symbol: str) -> float:
        begin = int((offset - start) * scale)
        end = max(begin + 1, int((offset + duration - start) * scale))
        for i in range(begin, min(end, width)):
            chars[i] = symbol
        return offset + duration

    cursor = entry.started_at
    timings = entry.timings
    for value, symbol in (
        (timings.blocked, "."),
        (max(timings.dns, 0.0), "D"),
        (max(timings.connect, 0.0), "C"),
        (max(timings.ssl, 0.0), "S"),
        (timings.send + timings.wait + timings.receive, "#"),
    ):
        if value > 0:
            cursor = fill(cursor, value, symbol)
    return "".join(chars).rstrip()


def render_waterfall(
    archive: HarArchive,
    width: int = 64,
    limit: Optional[int] = None,
    label_width: int = 30,
    annotate: Optional[Callable[[HarEntry], str]] = None,
) -> str:
    """Render the archive's request timeline as text rows.

    ``annotate`` adds a trailing per-row column (e.g. the audited
    decision for the request).
    """
    entries = archive.entries_by_start()
    if limit is not None:
        entries = entries[:limit]
    if not entries:
        return "(empty timeline)"
    start = min(entry.started_at for entry in entries)
    end = max(entry.finished_at for entry in entries)
    span = max(end - start, 1e-9)
    scale = width / span

    lines: List[str] = []
    lines.append(
        f"{'request'.ljust(label_width)} "
        f"0ms{' ' * (width - 12)}{span:.0f}ms"
    )
    for entry in entries:
        label = f"{entry.hostname}{entry.path}"
        if len(label) > label_width:
            label = label[: label_width - 1] + "~"
        flag = "*" if entry.coalesced else " "
        row = (
            f"{label.ljust(label_width)}{flag}"
            f"{_bar(entry, start, scale, width)}"
        )
        if annotate is not None:
            note = annotate(entry)
            if note:
                row = f"{row.ljust(label_width + 1 + width)}  {note}"
        lines.append(row)
    lines.append(
        "legend: .=blocked D=dns C=connect S=tls #=transfer "
        "*=coalesced"
    )
    return "\n".join(lines)
