"""Statistics and plain-text rendering used by benches and examples."""

from repro.analysis.stats import (
    cdf_points,
    percentile,
    median,
    interquartile_range,
    histogram,
)
from repro.analysis.render import (
    render_table,
    render_cdf,
    render_series,
    format_pct,
)
from repro.analysis.waterfall import render_waterfall

__all__ = [
    "cdf_points",
    "percentile",
    "median",
    "interquartile_range",
    "histogram",
    "render_table",
    "render_cdf",
    "render_series",
    "format_pct",
    "render_waterfall",
]
