"""Distribution statistics helpers."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np


def median(values: Sequence[float]) -> float:
    return float(np.median(values)) if len(values) else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    return float(np.percentile(values, q))


def interquartile_range(values: Sequence[float]) -> float:
    return percentile(values, 75) - percentile(values, 25)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    if not len(values):
        return []
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for i, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, i / n)
        else:
            points.append((float(value), i / n))
    return points


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of values <= x."""
    if not len(values):
        return 0.0
    array = np.asarray(values, dtype=float)
    return float((array <= x).mean())


def histogram(values: Sequence[int]) -> Dict[int, float]:
    """Integer histogram normalized to fractions."""
    if not len(values):
        return {}
    counts = Counter(int(v) for v in values)
    total = len(values)
    return {value: count / total for value, count in sorted(counts.items())}
