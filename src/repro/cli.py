"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``crawl``   -- generate + crawl a synthetic web, print Tables 1-3
* ``model``   -- run the §4 model (Figure 3, headline, cert plan)
* ``deploy``  -- run the §5 deployment (Figures 6/7b, passive pipeline)
* ``privacy`` -- the §6.2 privacy exposure comparison
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import format_pct, render_cdf, render_table
from repro.browser import (
    ChromiumPolicy,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)

POLICIES = {
    "chromium": ChromiumPolicy,
    "firefox": lambda: FirefoxPolicy(origin_frames=False),
    "firefox+origin": lambda: FirefoxPolicy(origin_frames=True),
    "ideal-origin": IdealOriginPolicy,
    "none": NoCoalescingPolicy,
}


def _crawl(sites: int, seed: int, policy_name: str):
    from repro.dataset.crawler import Crawler
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.world import build_world

    world = build_world(DatasetConfig(site_count=sites, seed=seed))
    crawler = Crawler(world, policy=POLICIES[policy_name](),
                      speculative_rate=0.10)
    return world, crawler.crawl()


def cmd_crawl(args) -> int:
    from repro.dataset import characterize

    world, result = _crawl(args.sites, args.seed, args.policy)
    ok = result.successes
    print(f"crawled {result.attempted} sites with the {args.policy} "
          f"policy; {result.success_count} succeeded\n")
    rows = characterize.table1(result.archives)
    print(render_table(
        "Table 1 -- crawl summary",
        ["Rank", "Attempted", "Success", "#Reqs", "PLT (ms)", "#DNS",
         "#TLS"],
        [(r.bucket_label, r.attempted, r.success,
          f"{r.median_requests:.0f}", f"{r.median_plt_ms:.0f}",
          f"{r.median_dns:.0f}", f"{r.median_tls:.0f}") for r in rows],
    ))
    print()
    print(render_table(
        "Table 2 -- top destination ASes",
        ["ASN", "Org", "#Req", "%"],
        [(asn, org, count, format_pct(share))
         for asn, org, count, share in characterize.table2(ok)],
    ))
    protocols, security = characterize.table3(ok)
    total = sum(protocols.values())
    print()
    print(render_table(
        "Table 3 -- protocols",
        ["Protocol", "#Req", "%"],
        [(name, count, format_pct(count / total))
         for name, count in sorted(protocols.items(),
                                   key=lambda kv: -kv[1])],
    ))
    return 0


def cmd_model(args) -> int:
    from repro.core import figure3, headline_reductions, plan_certificates

    world, result = _crawl(args.sites, args.seed, "chromium")
    data = figure3(result.archives)
    print(render_cdf(
        "Figure 3 -- per-page DNS/TLS counts",
        [("measured DNS", data.measured_dns),
         ("measured TLS", data.measured_tls),
         ("ideal IP", data.ideal_ip),
         ("ideal ORIGIN", data.ideal_origin)],
    ))
    headline = headline_reductions(result.archives)
    print(f"\nheadline: validation reduction "
          f"{format_pct(headline['validation_reduction'])}, "
          f"DNS reduction {format_pct(headline['dns_reduction'])} "
          "(paper: 68.75% / 64.28%)")
    plan = plan_certificates(world)
    print(f"certificates needing no change: "
          f"{format_pct(plan.unchanged_fraction)} (paper: 62.41%); "
          f"<=10 additions covers "
          f"{format_pct(plan.fraction_with_changes_at_most(10))}")
    return 0


def cmd_deploy(args) -> int:
    from repro.dataset.world import build_world
    from repro.deployment import (
        ActiveMeasurement,
        DeploymentExperiment,
        PassivePipeline,
    )
    from repro.deployment.active import FIREFOX_91_UA
    from repro.deployment.experiment import Group, deployment_world_config

    world = build_world(
        deployment_world_config(site_count=args.sites, seed=args.seed)
    )
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    print(f"sample: {len(experiment.sample)} sites; certificates "
          "reissued with byte-equal SAN additions")

    if args.phase == "ip":
        experiment.deploy_ip_coalescing()
        active = ActiveMeasurement(experiment, origin_frames=False,
                                   user_agent=FIREFOX_91_UA)
    else:
        experiment.enable_origin_frames()
        active = ActiveMeasurement(experiment, origin_frames=True)
    pipeline = PassivePipeline(experiment, sampling_rate=1.0)
    pipeline.attach()
    result = active.run()
    pipeline.detach()

    print()
    print(render_table(
        f"Figure 7 -- new TLS connections to {experiment.third_party} "
        f"({args.phase} phase)",
        ["#New conns", "Experiment", "Control"],
        [(count,
          format_pct(result.fraction_with(Group.EXPERIMENT, count)),
          format_pct(result.fraction_with(Group.CONTROL, count)))
         for count in range(5)],
    ))
    print(f"\npassive reduction in new third-party TLS connections: "
          f"{format_pct(pipeline.tls_connection_reduction())}")
    return 0


def cmd_privacy(args) -> int:
    from repro.core import compare_privacy

    _, result = _crawl(args.sites, args.seed, "chromium")
    comparison = compare_privacy(result.successes)
    medians = comparison.median_signals()
    print(render_table(
        "Privacy -- plaintext signals per page (paper §6.2)",
        ["Client", "median DNS+SNI signals"],
        [("measured (today)", f"{medians['measured']:.0f}"),
         ("ideal ORIGIN client", f"{medians['ideal_origin']:.0f}")],
    ))
    print(f"\nsignal reduction "
          f"{format_pct(comparison.signal_reduction())}; median "
          f"hostnames hidden per page "
          f"{comparison.median_hostnames_hidden():.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Respect the ORIGIN!' (IMC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--sites", type=int, default=150,
                       help="synthetic sites to generate (default 150)")
        p.add_argument("--seed", type=int, default=2022)

    crawl = sub.add_parser("crawl", help="crawl and characterize")
    common(crawl)
    crawl.add_argument("--policy", choices=sorted(POLICIES),
                       default="chromium")
    crawl.set_defaults(func=cmd_crawl)

    model = sub.add_parser("model", help="run the §4 model")
    common(model)
    model.set_defaults(func=cmd_model)

    deploy = sub.add_parser("deploy", help="run the §5 deployment")
    common(deploy)
    deploy.add_argument("--phase", choices=("ip", "origin"),
                        default="origin")
    deploy.set_defaults(func=cmd_deploy)

    privacy = sub.add_parser("privacy", help="§6.2 exposure analysis")
    common(privacy)
    privacy.set_defaults(func=cmd_privacy)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
