"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``crawl``   -- generate + crawl a synthetic web, print Tables 1-7
* ``model``   -- run the §4 model (Figure 3, headline, cert plan)
* ``deploy``  -- run the §5 deployment (Figures 6/7b, passive pipeline)
* ``privacy`` -- the §6.2 privacy exposure comparison
* ``report``  -- render one run-ledger record as a dashboard
* ``compare`` -- regression verdicts between two ledger records

``crawl``, ``model``, and ``privacy`` share one crawl pipeline: the
dataset is partitioned into deterministic shards (``--shards``),
crawled by ``--jobs`` worker processes, and the merged archives are
persisted in a content-addressed cache so repeated invocations with
the same configuration skip the crawl entirely (``cache: hit``).

Any crawl-pipeline command (plus ``traffic`` and ``profile``) takes
``--ledger DIR`` to append a canonical run record -- per-phase latency
histograms, headline metrics, SLO verdicts from ``--slo FILE`` -- that
``report`` and ``compare`` consume (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import __version__
from repro.analysis import format_pct, render_cdf, render_table
from repro.browser.policy import POLICY_FACTORIES
from repro.obs.compare import (
    ABS_FLOOR_MS as COMPARE_ABS_FLOOR_MS,
    REL_FLOOR as COMPARE_REL_FLOOR,
)

#: Kept as the CLI-facing name->factory registry (the canonical copy
#: lives in :mod:`repro.browser.policy` so crawl workers can share it).
POLICIES = POLICY_FACTORIES


def _diag(message: str) -> None:
    """Diagnostics (cache status, shard progress, trace notes) go to
    stderr so stdout stays clean, parseable table output."""
    print(message, file=sys.stderr)


def _shard_progress(done: int, total: int) -> None:
    _diag(f"shards: {done}/{total}")


def _export_trace(trace, trace_out, want_metrics: bool) -> None:
    """Write the requested trace artifact(s); summary goes to stdout."""
    if trace_out:
        if str(trace_out).endswith(".jsonl"):
            with open(trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace.to_jsonl())
            _diag(f"trace: {len(trace.spans)} spans -> {trace_out} "
                  "(span JSONL)")
        else:
            count = trace.write_chrome_trace(trace_out)
            _diag(f"trace: {count} spans -> {trace_out} "
                  "(Chrome trace_event; load in Perfetto or "
                  "about:tracing)")
    if want_metrics:
        print(trace.metrics_summary())
        print()


def _ledger_setup(args):
    """Resolve ``(ledger_dir, slo_rules)`` from ``--ledger``/``--slo``.

    A malformed SLO file aborts *before* any crawling (exit 2): a gate
    file that cannot be parsed must never let a run pass silently.
    """
    ledger_dir = getattr(args, "ledger", None)
    slo_path = getattr(args, "slo", None)
    rules = []
    if slo_path:
        from repro.obs.slo import SloError, load_slo

        try:
            rules = load_slo(slo_path)
        except SloError as error:
            _diag(f"slo: {error}")
            raise SystemExit(2)
    return ledger_dir, rules


def _counter_total(registry, name: str):
    """Sum of one counter series across all label sets."""
    return sum(
        metric.value for metric in registry.metrics()
        if metric.kind == "counter" and metric.name == name
    )


def _ledger_watch(hb, rules, unit: str = "pages"):
    """Build the heartbeat callback for ``crawl_traced``/
    ``run_scenario``: after every shard merge it reads the merged-
    so-far metrics and redraws the status line (work done, rate, open
    connection count, SLO burn)."""
    from repro.obs.ledger import phase_docs_from_registry
    from repro.obs.slo import slo_burn

    def watch(done: int, total: int, crawl_trace) -> None:
        if not hb.enabled:
            return
        docs = phase_docs_from_registry(crawl_trace.metrics)
        pages = sum(doc["count"] for doc in docs
                    if doc["name"] == "phase.page")
        conns = _counter_total(crawl_trace.metrics,
                               "pool.connections_opened")
        elapsed = hb.elapsed()
        fields = {
            "shards": f"{done}/{total}",
            unit: pages,
            f"{unit}/s": f"{pages / elapsed:.1f}" if elapsed > 0
            else "0.0",
            "conns": conns,
        }
        if rules:
            failing, evaluated = slo_burn(rules, docs)
            fields["slo"] = f"{evaluated - failing}/{evaluated} ok"
        hb.tick(fields, force=done == total)

    return watch


def _finish_ledger(ledger_dir, record) -> None:
    """Write the record and print its ledger/SLO diagnostics."""
    from repro.obs.ledger import write_record

    path = write_record(ledger_dir, record)
    _diag(f"ledger: run {record.run_id} -> {path}")
    failing = [
        doc["name"] for doc in record.slo
        if doc.get("measured") is not None and not doc.get("ok")
    ]
    if failing:
        _diag(f"slo: FAIL {', '.join(failing)}")
    elif record.slo:
        _diag(f"slo: {len(record.slo)} gate(s) pass")


def _crawl_cached(args, policy_name: str, force_audit: bool = False):
    """The shared crawl pipeline: shards + jobs + cache + telemetry.

    Returns ``(config, shard_count, result, trace)`` where ``trace``
    is the merged :class:`~repro.telemetry.CrawlTrace` when the crawl
    ran live (``--trace``/``--metrics``/``--audit``/``--ledger`` or
    ``force_audit``) and ``None`` on the cached path.  Diagnostics
    (cache status, shard progress) print to stderr.  Live crawls
    bypass cache reads (a cache hit would skip the simulation and
    produce no spans, audit events, or phase histograms); the archives
    are still stored so subsequent untraced runs hit the cache.
    """
    from repro.dataset.cache import CrawlCache, cache_key, crawl_cached
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import (
        CrawlParams,
        ParallelCrawler,
        plan_shards,
    )

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(
        policy=policy_name, speculative_rate=0.10,
        alpn=getattr(args, "alpn", "h2"),
        dns_latency_ms=getattr(args, "dns_latency", 48.0),
    )
    shard_count = len(plan_shards(config, args.shards or None))
    cache = None if args.no_cache else CrawlCache(args.cache_dir)

    ledger_dir, slo_rules = _ledger_setup(args)
    trace_out = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    audit_out = getattr(args, "audit", None)
    want_audit = bool(audit_out) or force_audit
    if trace_out or want_metrics or want_audit or ledger_dir:
        from repro.obs.heartbeat import Heartbeat

        crawler = ParallelCrawler(
            config, params=params, shard_count=shard_count,
            jobs=args.jobs,
        )
        hb = Heartbeat()
        try:
            result, trace = crawler.crawl_traced(
                progress=None if hb.enabled else _shard_progress,
                trace=bool(trace_out) or want_metrics,
                audit=want_audit,
                watch=_ledger_watch(hb, slo_rules),
            )
        finally:
            hb.close()
        if cache is None:
            _diag("cache: disabled")
        else:
            key = cache_key(config, params, shard_count)
            cache.store(key, result)
            _diag(f"cache: bypassed for tracing, stored "
                  f"{cache.path_for(key)}")
        _export_trace(trace, trace_out, want_metrics)
        if audit_out:
            with open(audit_out, "w", encoding="utf-8") as handle:
                handle.write(trace.audit_jsonl())
            _diag(f"audit: {len(trace.audit)} events -> {audit_out} "
                  "(JSONL)")
        if ledger_dir:
            from repro.obs.ledger import build_crawl_record

            record = build_crawl_record(
                args.command, config, params, shard_count, result,
                trace.metrics, slo_rules=slo_rules,
            )
            _finish_ledger(ledger_dir, record)
        return config, shard_count, result, trace

    result, hit = crawl_cached(
        config,
        params=params,
        shard_count=shard_count,
        jobs=args.jobs,
        cache=cache,
        refresh=args.refresh,
        progress=_shard_progress,
    )
    if cache is None:
        _diag("cache: disabled")
    else:
        key = cache_key(config, params, shard_count)
        status = "hit" if hit else "miss, stored"
        _diag(f"cache: {status} {cache.path_for(key)}")
    return config, shard_count, result, None


# -- crawl tables -------------------------------------------------------------

def _print_table1(result) -> None:
    from repro.dataset import characterize

    rows = characterize.table1(result.archives)
    print(render_table(
        "Table 1 -- crawl summary",
        ["Rank", "Attempted", "Success", "#Reqs", "PLT (ms)", "#DNS",
         "#TLS"],
        [(r.bucket_label, r.attempted, r.success,
          f"{r.median_requests:.0f}", f"{r.median_plt_ms:.0f}",
          f"{r.median_dns:.0f}", f"{r.median_tls:.0f}") for r in rows],
    ))


def _print_table2(result) -> None:
    from repro.dataset import characterize

    print(render_table(
        "Table 2 -- top destination ASes",
        ["ASN", "Org", "#Req", "%"],
        [(asn, org, count, format_pct(share))
         for asn, org, count, share in
         characterize.table2(result.successes)],
    ))


def _print_table3(result) -> None:
    from repro.dataset import characterize

    protocols, _ = characterize.table3(result.successes)
    total = sum(protocols.values())
    print(render_table(
        "Table 3 -- protocols",
        ["Protocol", "#Req", "%"],
        [(name, count, format_pct(count / total))
         for name, count in sorted(protocols.items(),
                                   key=lambda kv: -kv[1])],
    ))


def _print_table4(result) -> None:
    from repro.dataset import characterize

    rows, validations, total = characterize.table4(result.successes)
    print(render_table(
        f"Table 4 -- certificate issuers ({validations} validations "
        f"over {total} requests)",
        ["Issuer", "#Validations", "%"],
        [(issuer, count, format_pct(share))
         for issuer, count, share in rows],
    ))


def _print_table5(result) -> None:
    from repro.dataset import characterize

    print(render_table(
        "Table 5 -- content types",
        ["Content type", "#Req", "%"],
        [(content_type, count, format_pct(share))
         for content_type, count, share in
         characterize.table5(result.successes)],
    ))


def _print_table6(result) -> None:
    from repro.dataset import characterize

    rows = []
    for (asn, org), breakdown in \
            characterize.table6(result.successes).items():
        for content_type, count, share in breakdown:
            rows.append((asn, org, content_type, count,
                         format_pct(share)))
    print(render_table(
        "Table 6 -- content types per top AS",
        ["ASN", "Org", "Content type", "#Req", "%"],
        rows,
    ))


def _print_table7(result) -> None:
    from repro.dataset import characterize

    print(render_table(
        "Table 7 -- top third-party hostnames",
        ["Hostname", "#Req", "%"],
        [(hostname, count, format_pct(share))
         for hostname, count, share in
         characterize.table7(result.successes)],
    ))


#: ``--tables`` tokens, in render order.
TABLE_RENDERERS = {
    "1": _print_table1,
    "2": _print_table2,
    "3": _print_table3,
    "4": _print_table4,
    "5": _print_table5,
    "6": _print_table6,
    "7": _print_table7,
}

DEFAULT_TABLES = "1,2,3"


def _parse_tables(spec: str) -> List[str]:
    if spec.strip().lower() == "all":
        return list(TABLE_RENDERERS)
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens if token not in TABLE_RENDERERS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown table(s) {','.join(unknown)}; choose from "
            f"{','.join(TABLE_RENDERERS)} or 'all'"
        )
    # Render in canonical order, deduplicated.
    return [token for token in TABLE_RENDERERS if token in tokens]


#: ALPN protocols the crawl pipeline can offer.
SUPPORTED_ALPN = ("h2", "h3")


def _parse_alpn(spec: str) -> str:
    """Normalize ``--alpn`` (e.g. ``"h2,h3"``); h2 is mandatory."""
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens if token not in SUPPORTED_ALPN]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown protocol(s) {','.join(unknown)}; choose from "
            f"{','.join(SUPPORTED_ALPN)}"
        )
    if "h2" not in tokens:
        raise argparse.ArgumentTypeError(
            "the offer must include h2 (h3 endpoints are discovered "
            "over h2 via Alt-Svc and HTTPS records)"
        )
    # Canonical order so equivalent spellings share a cache entry.
    return ",".join(p for p in SUPPORTED_ALPN if p in tokens)


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _nonnegative_int(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {count}")
    return count


#: ``--breakdown`` tokens, in render order (mirrors ``--tables``).
BREAKDOWN_METRICS = ("dns", "tls", "validations")


def _parse_breakdown(spec: str) -> List[str]:
    if spec.strip().lower() == "all":
        return list(BREAKDOWN_METRICS)
    tokens = [token.strip() for token in spec.split(",") if token.strip()]
    unknown = [token for token in tokens
               if token not in BREAKDOWN_METRICS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown breakdown metric(s) {','.join(unknown)}; choose "
            f"from {','.join(BREAKDOWN_METRICS)} or 'all'"
        )
    return [token for token in BREAKDOWN_METRICS if token in tokens]


def cmd_crawl(args) -> int:
    _, _, result, _ = _crawl_cached(args, args.policy)
    print(f"crawled {result.attempted} sites with the {args.policy} "
          f"policy; {result.success_count} succeeded")
    for token in args.tables:
        print()
        TABLE_RENDERERS[token](result)
    return 0


def _print_protocol_rows(result) -> None:
    """Per-protocol request/handshake summary for multi-ALPN crawls."""
    by_protocol = {}
    for archive in result.successes:
        for entry in archive.entries:
            row = by_protocol.setdefault(
                entry.protocol, {"requests": 0, "new_connections": 0,
                                 "handshake_ms": 0.0}
            )
            row["requests"] += 1
            if entry.timings.connect >= 0 or entry.timings.ssl >= 0:
                row["new_connections"] += 1
                row["handshake_ms"] += (
                    max(entry.timings.connect, 0.0)
                    + max(entry.timings.ssl, 0.0)
                )
    total = sum(row["requests"] for row in by_protocol.values()) or 1
    print(render_table(
        "Per-protocol breakdown",
        ["Protocol", "#Req", "%", "#New conns", "Handshake ms (total)"],
        [(protocol, row["requests"],
          format_pct(row["requests"] / total),
          row["new_connections"], f"{row['handshake_ms']:.0f}")
         for protocol, row in sorted(by_protocol.items(),
                                     key=lambda kv: -kv[1]["requests"])],
    ))


def cmd_model(args) -> int:
    from repro.core import figure3, headline_reductions
    from repro.dataset.shard import plan_certificates_sharded

    config, shard_count, result, _ = _crawl_cached(args, "chromium")
    data = figure3(result.archives)
    print(render_cdf(
        "Figure 3 -- per-page DNS/TLS counts",
        [("measured DNS", data.measured_dns),
         ("measured TLS", data.measured_tls),
         ("ideal IP", data.ideal_ip),
         ("ideal ORIGIN", data.ideal_origin)],
    ))
    if "h3" in getattr(args, "alpn", "h2"):
        print()
        _print_protocol_rows(result)
    headline = headline_reductions(result.archives)
    print(f"\nheadline: validation reduction "
          f"{format_pct(headline['validation_reduction'])}, "
          f"DNS reduction {format_pct(headline['dns_reduction'])} "
          "(paper: 68.75% / 64.28%)")
    plan = plan_certificates_sharded(config, shard_count)
    print(f"certificates needing no change: "
          f"{format_pct(plan.unchanged_fraction)} (paper: 62.41%); "
          f"<=10 additions covers "
          f"{format_pct(plan.fraction_with_changes_at_most(10))}")
    return 0


def cmd_deploy(args) -> int:
    from repro.dataset.world import build_world
    from repro.deployment import (
        ActiveMeasurement,
        DeploymentExperiment,
        PassivePipeline,
    )
    from repro.deployment.active import FIREFOX_91_UA
    from repro.deployment.experiment import Group, deployment_world_config

    world = build_world(
        deployment_world_config(site_count=args.sites, seed=args.seed)
    )
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    print(f"sample: {len(experiment.sample)} sites; certificates "
          "reissued with byte-equal SAN additions")

    if args.phase == "ip":
        experiment.deploy_ip_coalescing()
        active = ActiveMeasurement(experiment, origin_frames=False,
                                   user_agent=FIREFOX_91_UA)
    else:
        experiment.enable_origin_frames()
        active = ActiveMeasurement(experiment, origin_frames=True)
    pipeline = PassivePipeline(experiment, sampling_rate=1.0)
    pipeline.attach()
    result = active.run()
    pipeline.detach()

    print()
    print(render_table(
        f"Figure 7 -- new TLS connections to {experiment.third_party} "
        f"({args.phase} phase)",
        ["#New conns", "Experiment", "Control"],
        [(count,
          format_pct(result.fraction_with(Group.EXPERIMENT, count)),
          format_pct(result.fraction_with(Group.CONTROL, count)))
         for count in range(5)],
    ))
    print(f"\npassive reduction in new third-party TLS connections: "
          f"{format_pct(pipeline.tls_connection_reduction())}")
    return 0


def cmd_explain(args) -> int:
    from repro.audit.explain import render_explanation, render_taxonomy

    if args.taxonomy:
        print(render_taxonomy())
        return 0
    _, _, result, trace = _crawl_cached(
        args, args.policy, force_audit=True
    )
    _diag(f"explain: {len(trace.audit)} audit events over "
          f"{result.attempted} pages")
    print(render_explanation(
        result.archives,
        trace.audit,
        pages=args.pages,
        metrics=args.breakdown,
    ))
    from repro.audit.reasons import ReasonCode

    protocol_codes = {
        ReasonCode.ALT_SVC_UPGRADE, ReasonCode.HTTPS_RR_H3,
        ReasonCode.QUIC_HANDSHAKE_1RTT, ReasonCode.ZERO_RTT_RESUMED,
        ReasonCode.CROSS_HOST_TICKET, ReasonCode.TLS_ALPN_FALLBACK,
    }
    protocol_events = [
        event for event in trace.audit
        if event.kind in ("quic", "h3") or event.code in protocol_codes
    ]
    if protocol_events:
        from collections import Counter

        counts = Counter(event.code for event in protocol_events)
        print()
        print(render_table(
            "Protocol events (h3 discovery and QUIC resumption)",
            ["Reason", "#Events"],
            [(code.value, count)
             for code, count in sorted(counts.items(),
                                       key=lambda kv: -kv[1])],
        ))
    return 0


def cmd_audit_diff(args) -> int:
    from repro.audit.diff import (
        diff_decisions,
        load_audit_jsonl,
        render_diff,
    )
    from repro.audit.reasons import UnknownReasonCode

    try:
        events_a = load_audit_jsonl(args.a)
        events_b = load_audit_jsonl(args.b)
    except UnknownReasonCode as error:
        _diag(f"audit-diff: {error}")
        return 2
    except OSError as error:
        _diag(f"audit-diff: {error}")
        return 2
    diff = diff_decisions(events_a, events_b)
    _diag(f"audit-diff: {len(events_a)} events in {args.a}, "
          f"{len(events_b)} in {args.b}")
    print(render_diff(diff, label_a=str(args.a), label_b=str(args.b)))
    return 0 if diff.clean else 1


def _short_func_name(func: tuple) -> str:
    """``file:line(name)`` with the path shortened to the module-ish
    tail, so the hot-spot table stays readable and stable across
    checkouts."""
    filename, line, name = func
    if filename == "~":
        return name  # C builtins print as plain names
    marker = "/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        filename = "repro/" + filename[index + len(marker):]
    else:
        filename = filename.rsplit("/", 1)[-1]
    return f"{filename}:{line}({name})"


def cmd_profile(args) -> int:
    """Profile an in-process crawl and print a sorted hot-spot table.

    The crawl always runs with ``jobs=1``: cProfile only observes the
    calling process, so worker fan-out would hide exactly the code
    this command exists to expose.  Simulated work is deterministic,
    which makes call counts exactly reproducible run-to-run (timings
    naturally vary with the machine).
    """
    import cProfile
    import pstats

    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import (
        CrawlParams,
        ParallelCrawler,
        plan_shards,
    )
    from repro.telemetry.validation import validate_crawl_trace

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(policy=args.policy, speculative_rate=0.10,
                         alpn=args.alpn)
    shard_count = len(plan_shards(config, args.shards or None))
    crawler = ParallelCrawler(
        config, params=params, shard_count=shard_count, jobs=1
    )
    _diag(f"profile: crawling {config.site_count} sites over "
          f"{shard_count} shard(s) in-process (jobs=1; cProfile "
          "cannot see worker processes)")

    ledger_dir, slo_rules = _ledger_setup(args)
    want_trace = bool(args.trace)
    profiler = cProfile.Profile()
    trace = None
    profiler.enable()
    try:
        if want_trace or ledger_dir:
            # The ledger needs the telemetry registry for its phase
            # histograms even when no span artifact was requested.
            result, trace = crawler.crawl_traced(
                trace=want_trace, audit=False
            )
        else:
            result = crawler.crawl()
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    elapsed = stats.total_tt
    rate = result.attempted / elapsed if elapsed > 0 else 0.0
    print(f"profiled {result.attempted} sites in {elapsed:.2f}s "
          f"({rate:.2f} sites/sec under profiler overhead)")
    print()

    sort_index = 3 if args.sort == "cumulative" else 2
    rows = sorted(
        stats.stats.items(),
        key=lambda item: item[1][sort_index],
        reverse=True,
    )[: args.top]
    print(render_table(
        f"Top {len(rows)} functions by {args.sort} time",
        ["ncalls", "tottime (s)", "cumtime (s)", "function"],
        [(
            str(nc) if cc == nc else f"{nc}/{cc}",
            f"{tt:.3f}",
            f"{ct:.3f}",
            _short_func_name(func),
        ) for func, (cc, nc, tt, ct, _callers) in rows],
    ))

    if args.pstats:
        stats.dump_stats(args.pstats)
        _diag(f"pstats: raw profile -> {args.pstats} "
              "(load with pstats.Stats or snakeviz)")

    if want_trace:
        problems = validate_crawl_trace(result, trace.spans)
        if problems:
            for problem in problems:
                _diag(f"trace: INVALID: {problem}")
            return 1
        _diag(f"trace: {len(trace.spans)} spans validated against "
              f"{result.attempted} archives")
        _export_trace(trace, args.trace, want_metrics=False)
    if ledger_dir:
        from repro.obs.ledger import build_crawl_record

        record = build_crawl_record(
            "profile", config, params, shard_count, result,
            trace.metrics, slo_rules=slo_rules,
        )
        _finish_ledger(ledger_dir, record)
    return 0


def _print_traffic_summary(aggregate) -> None:
    totals = aggregate.totals
    completed = aggregate.completed
    plt = (
        sum(t.plt_total_ms for t in aggregate.cohorts.values())
        / completed if completed else 0.0
    )
    print(
        f"simulated {aggregate.users} users, {aggregate.visits} visits "
        f"({completed} completed, {aggregate.failed} failed) over "
        f"{aggregate.duration_ms / 1000:.0f}s"
    )
    print(
        f"edge load: {totals.connections} connections "
        f"(peak {totals.peak_concurrent} concurrent), "
        f"{totals.handshakes} handshakes "
        f"({format_pct(totals.resumption_rate)} resumed), "
        f"{totals.requests} requests "
        f"({format_pct(totals.coalesced_share)} coalesced), "
        f"{totals.goaways} overload GOAWAYs, "
        f"{aggregate.retries} client retries"
    )
    print(f"client: {aggregate.dns_queries} DNS queries, "
          f"mean PLT {plt:.0f} ms")


def _print_traffic_tables(aggregate) -> None:
    print()
    print(render_table(
        "Per-cohort outcomes",
        ["Cohort", "Users", "Visits", "Revisits", "OK", "Failed",
         "Cached", "Mean PLT ms"],
        [(name, tally.users, tally.visits, tally.revisits,
          tally.completed, tally.failed, tally.cached_responses,
          f"{tally.mean_plt_ms:.0f}")
         for name, tally in sorted(aggregate.cohorts.items())],
    ))
    print()
    print(render_table(
        "Edge load by group",
        ["Edge", "Conns", "Peak", "Handshakes", "Resumed", "#Req",
         "Coalesced", "GOAWAYs"],
        [(name, c.connections, c.peak_concurrent, c.handshakes,
          format_pct(c.resumption_rate), c.requests,
          format_pct(c.coalesced_share), c.goaways)
         for name, c in sorted(aggregate.edges.items())
         if c.connections or c.requests],
    ))
    series = aggregate.coalesced_share_series()
    if series:
        print()
        print(render_table(
            "Coalesced-request share over time (Figure 8-style)",
            ["t (s)", "Coalesced", "#Req"],
            [(f"{start / 1000:.0f}", format_pct(share), requests)
             for start, share, requests in series],
        ))


def cmd_traffic(args) -> int:
    from repro.audit.log import events_to_jsonl
    from repro.traffic import (
        ScenarioConfig,
        run_scenario,
        run_what_if,
        scenario_for_policy,
        what_if_rows,
    )

    base = ScenarioConfig(
        users=args.users,
        site_count=args.sites,
        seed=args.seed,
        duration_ms=args.duration * 1000.0,
        mean_visits_per_user=args.mean_visits,
        bucket_ms=args.bucket * 1000.0,
        edge_capacity=args.edge_capacity,
        goaway_retry_limit=args.retry_limit,
    )
    shard_count = args.shards or None
    ledger_dir, slo_rules = _ledger_setup(args)

    if args.what_if:
        if args.trace or args.metrics or ledger_dir:
            _diag("traffic: --trace/--metrics/--ledger are ignored "
                  "with --what-if (the sweep keeps no merged trace)")
        _diag(f"traffic: what-if sweep over {args.users} users, "
              f"{args.sites} sites")
        results = run_what_if(
            base, shard_count=shard_count, jobs=args.jobs,
            progress=lambda policy, done, total:
                _diag(f"{policy}: shard {done}/{total}"),
        )
        headers, rows = what_if_rows(results)
        print(render_table(
            "What-if: edge load under coalescing policies",
            headers, rows,
        ))
        return 0

    scenario = scenario_for_policy(base, args.scenario)
    _diag(f"traffic: {args.users} users over {args.sites} sites "
          f"({args.scenario} scenario)")
    from repro.obs.heartbeat import Heartbeat

    hb = Heartbeat()
    try:
        aggregate, trace = run_scenario(
            scenario, shard_count=shard_count, jobs=args.jobs,
            audit=bool(args.audit),
            trace=bool(args.trace) or args.metrics,
            progress=None if hb.enabled else _shard_progress,
            watch=_ledger_watch(hb, slo_rules, unit="visits"),
        )
    finally:
        hb.close()
    _export_trace(trace, args.trace, args.metrics)
    _print_traffic_summary(aggregate)
    _print_traffic_tables(aggregate)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(aggregate.to_jsonl())
        _diag(f"aggregate: -> {args.out} (canonical JSONL)")
    if args.audit:
        with open(args.audit, "w", encoding="utf-8") as handle:
            handle.write(events_to_jsonl(trace.audit))
        _diag(f"audit: {len(trace.audit)} events -> {args.audit} "
              "(JSONL)")
    if ledger_dir:
        from repro.obs.ledger import build_traffic_record
        from repro.traffic.scenario import plan_user_shards

        record = build_traffic_record(
            scenario, len(plan_user_shards(scenario, shard_count)),
            aggregate, trace.metrics, slo_rules=slo_rules,
            scenario_name=args.scenario,
        )
        _finish_ledger(ledger_dir, record)
    return 0


def cmd_cache(args) -> int:
    from repro.dataset.cache import CrawlCache

    import time as time_module

    cache = CrawlCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        now = time_module.time()
        print(f"cache: {stats.root}")
        print(f"{stats.count} entries, "
              f"{stats.total_bytes / 1_048_576:.1f} MiB")
        if stats.entries:
            print()
            print(render_table(
                "Entries (newest first)",
                ["Key", "Size (MiB)", "Age (days)"],
                [(entry.key,
                  f"{entry.size_bytes / 1_048_576:.2f}",
                  f"{(now - entry.modified_at) / 86_400:.1f}")
                 for entry in stats.entries],
            ))
        return 0
    # prune
    if args.max_entries is None and args.max_age_days is None:
        _diag("cache: prune needs --max-entries and/or --max-age-days "
              "(use stats to inspect first)")
        return 2
    removed = cache.prune(
        max_entries=args.max_entries, max_age_days=args.max_age_days
    )
    freed = sum(entry.size_bytes for entry in removed)
    print(f"pruned {len(removed)} entries, "
          f"{freed / 1_048_576:.1f} MiB freed")
    for entry in removed:
        _diag(f"removed {entry.path}")
    return 0


def cmd_privacy(args) -> int:
    from repro.core import compare_privacy

    _, _, result, _ = _crawl_cached(args, "chromium")
    comparison = compare_privacy(result.successes)
    medians = comparison.median_signals()
    print(render_table(
        "Privacy -- plaintext signals per page (paper §6.2)",
        ["Client", "median DNS+SNI signals"],
        [("measured (today)", f"{medians['measured']:.0f}"),
         ("ideal ORIGIN client", f"{medians['ideal_origin']:.0f}")],
    ))
    print(f"\nsignal reduction "
          f"{format_pct(comparison.signal_reduction())}; median "
          f"hostnames hidden per page "
          f"{comparison.median_hostnames_hidden():.0f}")
    return 0


def cmd_report(args) -> int:
    from repro.obs import ledger as ledger_mod
    from repro.obs.report import render_report, slo_failures

    try:
        path = ledger_mod.resolve_record_path(args.run, args.ledger)
        record = ledger_mod.load_record(path)
    except ledger_mod.LedgerError as error:
        _diag(f"report: {error}")
        return 2
    if args.slo:
        from repro.obs.slo import SloError, evaluate_slos, load_slo

        try:
            rules = load_slo(args.slo)
        except SloError as error:
            _diag(f"report: {error}")
            return 2
        record.slo = evaluate_slos(rules, record.phases,
                                   record.headline)
    print(render_report(record, fmt=args.format), end="")
    failing = slo_failures(record)
    if failing:
        _diag(f"slo: FAIL {', '.join(failing)}")
        if args.check:
            return 1
    return 0


def cmd_compare(args) -> int:
    from repro.obs import ledger as ledger_mod
    from repro.obs.compare import compare_records, render_compare

    try:
        record_a = ledger_mod.load_record(
            ledger_mod.resolve_record_path(args.a, args.ledger)
        )
        record_b = ledger_mod.load_record(
            ledger_mod.resolve_record_path(args.b, args.ledger)
        )
    except ledger_mod.LedgerError as error:
        _diag(f"compare: {error}")
        return 2
    result = compare_records(
        record_a, record_b,
        rel_floor=args.rel_floor, abs_floor_ms=args.abs_floor_ms,
    )
    _diag(f"compare: baseline {record_a.run_id}, "
          f"candidate {record_b.run_id}")
    print(render_compare(result, args.a, args.b,
                         only_changed=args.only_changed), end="")
    return result.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Respect the ORIGIN!' (IMC 2022)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--sites", type=int, default=150,
                       help="synthetic sites to generate (default 150)")
        p.add_argument("--seed", type=int, default=2022)

    def crawl_pipeline(p):
        p.add_argument("--jobs", type=_positive_int, default=1,
                       help="crawl worker processes (default 1; does "
                            "not change results)")
        p.add_argument("--shards", type=int, default=0,
                       help="shard layout (default 0 = one shard per "
                            "~100 sites; part of the experiment "
                            "definition)")
        p.add_argument("--cache-dir", default=None,
                       help="crawl cache directory (default "
                            "$REPRO_CRAWL_CACHE or "
                            "~/.cache/repro/crawls)")
        p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the crawl cache")
        p.add_argument("--refresh", action="store_true",
                       help="ignore any cached crawl, re-crawl, and "
                            "overwrite the entry")
        p.add_argument("--trace", metavar="OUT", default=None,
                       help="crawl with span tracing and write the "
                            "trace to OUT: Chrome trace_event JSON "
                            "(Perfetto-loadable), or span JSONL when "
                            "OUT ends in .jsonl; bypasses cache reads")
        p.add_argument("--metrics", action="store_true",
                       help="crawl with telemetry and print the "
                            "unified metrics summary; bypasses cache "
                            "reads")
        p.add_argument("--audit", metavar="OUT", default=None,
                       help="crawl with decision auditing and write "
                            "the audit log to OUT (canonical JSONL); "
                            "bypasses cache reads")
        p.add_argument("--alpn", type=_parse_alpn, default="h2",
                       help="ALPN protocols the browser offers "
                            "(default h2; 'h2,h3' also discovers and "
                            "upgrades to QUIC endpoints)")
        p.add_argument("--dns-latency", type=float, default=48.0,
                       dest="dns_latency", metavar="MS",
                       help="simulated resolver wire RTT in ms "
                            "(default 48; part of the run "
                            "fingerprint)")
        ledger_options(p)

    def ledger_options(p):
        p.add_argument("--ledger", metavar="DIR", default=None,
                       help="append this run's record (phase latency "
                            "histograms, headline metrics, SLO "
                            "verdicts) to the ledger directory DIR; "
                            "forces the traced pipeline")
        p.add_argument("--slo", metavar="FILE", default=None,
                       help="evaluate the [[slo]] gates in FILE and "
                            "store their verdicts in the run record")

    crawl = sub.add_parser("crawl", help="crawl and characterize")
    common(crawl)
    crawl_pipeline(crawl)
    crawl.add_argument("--policy", choices=sorted(POLICIES),
                       default="chromium")
    crawl.add_argument("--tables", type=_parse_tables,
                       default=DEFAULT_TABLES,
                       help="comma-separated table numbers to render "
                            f"(1-{len(TABLE_RENDERERS)} or 'all'; "
                            f"default {DEFAULT_TABLES})")
    crawl.set_defaults(func=cmd_crawl)

    model = sub.add_parser("model", help="run the §4 model")
    common(model)
    crawl_pipeline(model)
    model.set_defaults(func=cmd_model)

    deploy = sub.add_parser("deploy", help="run the §5 deployment")
    common(deploy)
    deploy.add_argument("--phase", choices=("ip", "origin"),
                        default="origin")
    deploy.set_defaults(func=cmd_deploy)

    explain = sub.add_parser(
        "explain",
        help="annotated waterfalls + miss-reason gap breakdown",
    )
    common(explain)
    crawl_pipeline(explain)
    explain.add_argument("--policy", choices=sorted(POLICIES),
                         default="chromium")
    explain.add_argument("--pages", type=_nonnegative_int, default=None,
                         help="render only the first N per-page "
                              "waterfalls (0 = breakdown tables only; "
                              "default: all pages)")
    explain.add_argument("--breakdown", type=_parse_breakdown,
                         default=list(BREAKDOWN_METRICS),
                         help="comma-separated breakdown metrics "
                              f"({','.join(BREAKDOWN_METRICS)} or "
                              "'all'; default all)")
    explain.add_argument("--taxonomy", action="store_true",
                         help="print the reason-code taxonomy table "
                              "and exit (no crawl)")
    explain.set_defaults(func=cmd_explain)

    audit_diff = sub.add_parser(
        "audit-diff",
        help="compare two audit JSONL exports decision-by-decision",
    )
    audit_diff.add_argument("a", help="baseline audit JSONL")
    audit_diff.add_argument("b", help="comparison audit JSONL")
    audit_diff.set_defaults(func=cmd_audit_diff)

    privacy = sub.add_parser("privacy", help="§6.2 exposure analysis")
    common(privacy)
    crawl_pipeline(privacy)
    privacy.set_defaults(func=cmd_privacy)

    traffic = sub.add_parser(
        "traffic",
        help="population-scale traffic simulation with edge load "
             "accounting",
    )
    traffic.add_argument("--users", type=_positive_int, default=1000,
                         help="population size (default 1000)")
    traffic.add_argument("--sites", type=_positive_int, default=40,
                         help="sites in the simulated web (default 40)")
    traffic.add_argument("--seed", type=int, default=2022)
    traffic.add_argument("--duration", type=float, default=60.0,
                         help="scenario window in simulated seconds "
                              "(default 60)")
    traffic.add_argument("--mean-visits", type=float, default=2.0,
                         help="mean page visits per user; revisits "
                              "arrive with warm caches and TLS "
                              "tickets (default 2.0)")
    traffic.add_argument("--bucket", type=float, default=5.0,
                         help="time-series bucket in seconds "
                              "(default 5)")
    traffic.add_argument("--shards", type=int, default=0,
                         help="user-shard layout (default 0 = one "
                              "shard per ~500 users; part of the "
                              "experiment definition)")
    traffic.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes (default 1; does not "
                              "change results)")
    traffic.add_argument("--scenario", choices=("baseline", "origin",
                                                "ideal-san"),
                         default="baseline",
                         help="cohort mix + deployment switches "
                              "(default baseline)")
    traffic.add_argument("--what-if", action="store_true",
                         help="run baseline, origin, and ideal-san "
                              "over the same population and print the "
                              "comparison table")
    traffic.add_argument("--edge-capacity", type=_positive_int,
                         default=None,
                         help="fleet-wide concurrent-connection limit "
                              "per CDN edge; hitting it refuses "
                              "connections with GOAWAY (default "
                              "unlimited)")
    traffic.add_argument("--retry-limit", type=_nonnegative_int,
                         default=2,
                         help="client re-dials after an overload "
                              "GOAWAY (default 2)")
    traffic.add_argument("--out", metavar="OUT", default=None,
                         help="write the merged aggregate to OUT "
                              "(canonical JSONL, byte-identical "
                              "across --jobs)")
    traffic.add_argument("--audit", metavar="OUT", default=None,
                         help="collect decision auditing and write "
                              "the merged log to OUT (JSONL)")
    traffic.add_argument("--trace", metavar="OUT", default=None,
                         help="collect telemetry spans and write the "
                              "merged trace to OUT: Chrome "
                              "trace_event JSON, or span JSONL when "
                              "OUT ends in .jsonl")
    traffic.add_argument("--metrics", action="store_true",
                         help="print the unified metrics summary "
                              "after the run")
    ledger_options(traffic)
    traffic.set_defaults(func=cmd_traffic)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed crawl cache",
    )
    cache_cmd.add_argument("action", choices=("stats", "prune"))
    cache_cmd.add_argument("--cache-dir", default=None,
                           help="cache directory (default "
                                "$REPRO_CRAWL_CACHE or "
                                "~/.cache/repro/crawls)")
    cache_cmd.add_argument("--max-entries", type=_nonnegative_int,
                           default=None,
                           help="prune: keep at most N newest entries")
    cache_cmd.add_argument("--max-age-days", type=float, default=None,
                           help="prune: drop entries older than this")
    cache_cmd.set_defaults(func=cmd_cache)

    profile = sub.add_parser(
        "profile",
        help="profile an in-process crawl and print hot spots",
    )
    common(profile)
    profile.add_argument("--policy", choices=sorted(POLICIES),
                         default="chromium")
    profile.add_argument("--shards", type=int, default=0,
                         help="shard layout (default 0 = one shard per "
                              "~100 sites)")
    profile.add_argument("--alpn", type=_parse_alpn, default="h2",
                         help="ALPN protocols the browser offers")
    profile.add_argument("--sort", choices=("cumulative", "tottime"),
                         default="cumulative",
                         help="hot-spot sort key (default cumulative)")
    profile.add_argument("--top", type=_positive_int, default=25,
                         help="rows in the hot-spot table (default 25)")
    profile.add_argument("--trace", metavar="OUT", default=None,
                         help="also collect telemetry spans, validate "
                              "them against the archives, and write "
                              "OUT (Chrome trace_event JSON, or span "
                              "JSONL when OUT ends in .jsonl)")
    profile.add_argument("--pstats", metavar="OUT", default=None,
                         help="dump the raw cProfile stats to OUT")
    ledger_options(profile)
    profile.set_defaults(func=cmd_profile)

    report = sub.add_parser(
        "report",
        help="render a run-ledger record as a dashboard",
    )
    report.add_argument("run",
                        help="record path, or a run id resolved "
                             "under --ledger")
    report.add_argument("--ledger", metavar="DIR", default=None,
                        help="ledger directory run ids resolve in")
    report.add_argument("--format", choices=("ascii", "markdown"),
                        default="ascii",
                        help="ascii for terminals, markdown for CI "
                             "artifacts (default ascii)")
    report.add_argument("--slo", metavar="FILE", default=None,
                        help="re-evaluate the gates in FILE against "
                             "the record instead of showing the "
                             "stored verdicts")
    report.add_argument("--check", action="store_true",
                        help="exit 1 when any SLO gate fails")
    report.set_defaults(func=cmd_report)

    compare = sub.add_parser(
        "compare",
        help="per-metric regression verdicts between two ledger "
             "records (exit 0 clean / 1 regressed / 2 incomparable)",
    )
    compare.add_argument("a", help="baseline record (path or run id)")
    compare.add_argument("b", help="candidate record (path or run id)")
    compare.add_argument("--ledger", metavar="DIR", default=None,
                         help="ledger directory run ids resolve in")
    compare.add_argument("--rel-floor", type=float,
                         default=COMPARE_REL_FLOOR, metavar="FRAC",
                         help="relative noise floor on latency "
                              "percentiles (default "
                              f"{COMPARE_REL_FLOOR})")
    compare.add_argument("--abs-floor-ms", type=float,
                         default=COMPARE_ABS_FLOOR_MS, metavar="MS",
                         help="absolute noise floor in ms (default "
                              f"{COMPARE_ABS_FLOOR_MS})")
    compare.add_argument("--only-changed", action="store_true",
                         help="hide 'unchanged' rows from the table")
    compare.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
