"""The closed reason-code taxonomy for coalescing decisions.

Every coalescing-relevant decision in the simulator -- pool lookups,
the final per-request verdict, DNS resolution, TLS handshakes, HTTP/2
control frames, middlebox interference, and the §4 model's own
service accounting -- is labelled with exactly one :class:`ReasonCode`.
The enum is *closed*: exporters validate against it, ``audit-diff``
rejects unknown codes, and :data:`REASON_DESCRIPTIONS` must describe
every member (enforced by the tests), so a new decision path cannot
ship without joining the taxonomy.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple


class ReasonCode(str, Enum):
    """Why a request was (or was not) served over an existing
    connection, query, or validation."""

    # -- pool hits: the request rode an existing connection ---------------
    POOL_HIT_SAME_HOST = "POOL_HIT_SAME_HOST"
    POOL_HIT_H1_IDLE = "POOL_HIT_H1_IDLE"
    POOL_HIT_H1_CAP = "POOL_HIT_H1_CAP"
    POOL_HIT_IP_SAN = "POOL_HIT_IP_SAN"
    POOL_HIT_ORIGIN_FRAME = "POOL_HIT_ORIGIN_FRAME"
    HIT_BROWSER_CACHE = "HIT_BROWSER_CACHE"

    # -- misses: why a new connection / query was spent -------------------
    MISS_FIRST_CONTACT = "MISS_FIRST_CONTACT"
    MISS_NO_CONNECTION = "MISS_NO_CONNECTION"
    MISS_CLOSED_STALE = "MISS_CLOSED_STALE"
    MISS_CANNOT_MULTIPLEX = "MISS_CANNOT_MULTIPLEX"
    MISS_ANONYMOUS_PARTITION = "MISS_ANONYMOUS_PARTITION"
    MISS_POLICY_FORBIDS = "MISS_POLICY_FORBIDS"
    MISS_NO_DNS_OVERLAP = "MISS_NO_DNS_OVERLAP"
    MISS_SAN_MISMATCH = "MISS_SAN_MISMATCH"
    MISS_NO_CANDIDATE = "MISS_NO_CANDIDATE"
    MISS_MISDIRECTED_421 = "MISS_MISDIRECTED_421"
    MISS_SPECULATIVE_RACE = "MISS_SPECULATIVE_RACE"
    MISS_CLEARTEXT_HTTP = "MISS_CLEARTEXT_HTTP"
    MISS_DNS_BEFORE_REUSE = "MISS_DNS_BEFORE_REUSE"
    MISS_DNS_NXDOMAIN = "MISS_DNS_NXDOMAIN"
    MISS_REQUEST_FAILED = "MISS_REQUEST_FAILED"
    MISS_RETRY_AFTER_GOAWAY = "MISS_RETRY_AFTER_GOAWAY"
    MISS_UNATTRIBUTED = "MISS_UNATTRIBUTED"

    # -- model baselines: costs the ideal client also pays ----------------
    MISS_DIFFERENT_AS = "MISS_DIFFERENT_AS"
    MISS_DIFFERENT_IP = "MISS_DIFFERENT_IP"
    MISS_UNPLACEABLE = "MISS_UNPLACEABLE"

    # -- model credits: ideal budget the measured client never spent ------
    CREDIT_CACHED = "CREDIT_CACHED"
    CREDIT_CLEARTEXT_SERVICE = "CREDIT_CLEARTEXT_SERVICE"
    CREDIT_COALESCED_ACROSS_SERVICES = "CREDIT_COALESCED_ACROSS_SERVICES"
    CREDIT_NO_WIRE_QUERY = "CREDIT_NO_WIRE_QUERY"

    # -- DNS-layer decisions ----------------------------------------------
    DNS_WIRE_QUERY = "DNS_WIRE_QUERY"
    DNS_CACHE_HIT = "DNS_CACHE_HIT"
    DNS_JOINED_IN_FLIGHT = "DNS_JOINED_IN_FLIGHT"
    DNS_NXDOMAIN = "DNS_NXDOMAIN"

    # -- TLS-layer decisions ----------------------------------------------
    TLS_FULL_HANDSHAKE = "TLS_FULL_HANDSHAKE"
    TLS_SESSION_RESUMED = "TLS_SESSION_RESUMED"
    TLS_HANDSHAKE_FAILED = "TLS_HANDSHAKE_FAILED"
    TLS_ALPN_FALLBACK = "TLS_ALPN_FALLBACK"

    # -- protocol discovery and QUIC (h3) decisions -----------------------
    ALT_SVC_UPGRADE = "ALT_SVC_UPGRADE"
    HTTPS_RR_H3 = "HTTPS_RR_H3"
    QUIC_HANDSHAKE_1RTT = "QUIC_HANDSHAKE_1RTT"
    ZERO_RTT_RESUMED = "ZERO_RTT_RESUMED"
    CROSS_HOST_TICKET = "CROSS_HOST_TICKET"

    # -- HTTP/2-layer decisions -------------------------------------------
    H2_ORIGIN_FRAME_RECEIVED = "H2_ORIGIN_FRAME_RECEIVED"
    H2_GOAWAY = "H2_GOAWAY"
    H2_MISDIRECTED_421 = "H2_MISDIRECTED_421"
    EDGE_OVERLOAD_GOAWAY = "EDGE_OVERLOAD_GOAWAY"

    # -- middlebox interference (§6.7) ------------------------------------
    MIDDLEBOX_TEARDOWN_UNKNOWN_FRAME = "MIDDLEBOX_TEARDOWN_UNKNOWN_FRAME"

    # -- chaos: injected faults and the unified retry path -----------------
    FAULT_INJECTED = "FAULT_INJECTED"
    CONN_LOST_COALESCED = "CONN_LOST_COALESCED"
    RETRY_BACKOFF = "RETRY_BACKOFF"
    RETRY_EXHAUSTED = "RETRY_EXHAUSTED"
    STALE_DNS_SERVED = "STALE_DNS_SERVED"

    @property
    def is_hit(self) -> bool:
        """The request reused an existing connection (or the cache)."""
        return self.value.startswith("POOL_HIT_") or \
            self is ReasonCode.HIT_BROWSER_CACHE

    @property
    def is_miss(self) -> bool:
        return self.value.startswith("MISS_")

    @property
    def is_credit(self) -> bool:
        return self.value.startswith("CREDIT_")


class UnknownReasonCode(ValueError):
    """A serialized event carried a code outside the closed enum."""


def reason_code(value: str) -> ReasonCode:
    """Parse a serialized code, raising :class:`UnknownReasonCode`."""
    try:
        return ReasonCode(value)
    except ValueError:
        raise UnknownReasonCode(
            f"unknown reason code {value!r}; the taxonomy is closed -- "
            "see repro.audit.reasons.ReasonCode"
        ) from None


#: One-line description per code, for docs, ``repro explain`` output,
#: and the taxonomy table.  The tests require full coverage.
REASON_DESCRIPTIONS: Dict[ReasonCode, str] = {
    ReasonCode.POOL_HIT_SAME_HOST:
        "multiplexed connection with this exact SNI was reused",
    ReasonCode.POOL_HIT_H1_IDLE:
        "idle HTTP/1.1 connection for this host was reused",
    ReasonCode.POOL_HIT_H1_CAP:
        "per-host HTTP/1.1 connection limit reached; request queued "
        "on an existing connection",
    ReasonCode.POOL_HIT_IP_SAN:
        "coalesced: certificate covers the host and the addresses "
        "overlap (§2.3 IP matching)",
    ReasonCode.POOL_HIT_ORIGIN_FRAME:
        "coalesced: host is in the connection's advertised ORIGIN set "
        "(RFC 8336)",
    ReasonCode.HIT_BROWSER_CACHE:
        "served from the browser resource cache; no network use",
    ReasonCode.MISS_FIRST_CONTACT:
        "root document: nothing could exist to reuse",
    ReasonCode.MISS_NO_CONNECTION:
        "no usable connection for this SNI and none coalescable",
    ReasonCode.MISS_CLOSED_STALE:
        "connections for this SNI existed but were closed or failed",
    ReasonCode.MISS_CANNOT_MULTIPLEX:
        "only busy HTTP/1.1 connections were available (no multiplex)",
    ReasonCode.MISS_ANONYMOUS_PARTITION:
        "credential-less fetch partition never coalesces (§5.3)",
    ReasonCode.MISS_POLICY_FORBIDS:
        "the active policy never coalesces across hostnames",
    ReasonCode.MISS_NO_DNS_OVERLAP:
        "a certificate-covering connection existed but its addresses "
        "did not overlap the DNS answer (§2.3 transitivity loss)",
    ReasonCode.MISS_SAN_MISMATCH:
        "an address-sharing connection existed but its certificate "
        "does not cover the host",
    ReasonCode.MISS_NO_CANDIDATE:
        "no other usable connection was available to consider",
    ReasonCode.MISS_MISDIRECTED_421:
        "server answered 421 Misdirected Request; retried on a "
        "dedicated connection",
    ReasonCode.MISS_SPECULATIVE_RACE:
        "speculative/happy-eyeballs duplicate connection (§4.2)",
    ReasonCode.MISS_CLEARTEXT_HTTP:
        "cleartext http:// resource; HTTPS coalescing cannot apply",
    ReasonCode.MISS_DNS_BEFORE_REUSE:
        "connection was reused, but the browser still spent the "
        "blocking DNS query first (§6.8)",
    ReasonCode.MISS_DNS_NXDOMAIN:
        "DNS resolution failed (NXDOMAIN)",
    ReasonCode.MISS_REQUEST_FAILED:
        "request failed; the model does not budget failed requests",
    ReasonCode.MISS_RETRY_AFTER_GOAWAY:
        "connection refused with an overload GOAWAY; the request was "
        "re-dialed on a fresh connection after backoff",
    ReasonCode.MISS_UNATTRIBUTED:
        "no decision event was recorded for this request (bug guard)",
    ReasonCode.MISS_DIFFERENT_AS:
        "first contact with this origin AS; even the ideal ORIGIN "
        "client opens a connection per service",
    ReasonCode.MISS_DIFFERENT_IP:
        "first contact with this server IP; even ideal IP coalescing "
        "opens a connection per address",
    ReasonCode.MISS_UNPLACEABLE:
        "entry has no AS/IP mapping; counted as its own service",
    ReasonCode.CREDIT_CACHED:
        "service was served entirely from the browser cache; the "
        "ideal model still budgets it",
    ReasonCode.CREDIT_CLEARTEXT_SERVICE:
        "service was only reached over cleartext HTTP; no TLS budget "
        "was spent",
    ReasonCode.CREDIT_COALESCED_ACROSS_SERVICES:
        "service rode connections the model attributes to another "
        "service",
    ReasonCode.CREDIT_NO_WIRE_QUERY:
        "service never needed a wire DNS query (DNS-free ORIGIN reuse "
        "or fully cached answers)",
    ReasonCode.DNS_WIRE_QUERY:
        "query went to the wire (cache miss)",
    ReasonCode.DNS_CACHE_HIT:
        "answered from the resolver TTL cache",
    ReasonCode.DNS_JOINED_IN_FLIGHT:
        "joined an outstanding query for the same name",
    ReasonCode.DNS_NXDOMAIN:
        "authoritative answer: the name does not exist",
    ReasonCode.TLS_FULL_HANDSHAKE:
        "full TLS handshake with certificate validation",
    ReasonCode.TLS_SESSION_RESUMED:
        "TLS 1.3 session resumption; certificate flight skipped",
    ReasonCode.TLS_HANDSHAKE_FAILED:
        "handshake failed (validation error or peer alert)",
    ReasonCode.TLS_ALPN_FALLBACK:
        "handshake produced no ALPN result; h2 was assumed by prior "
        "knowledge rather than negotiated",
    ReasonCode.ALT_SVC_UPGRADE:
        "new h3 connection opened because the server advertised "
        "Alt-Svc; same-host h2 reuse deliberately skipped",
    ReasonCode.HTTPS_RR_H3:
        "DNS HTTPS/SVCB record advertised h3; first contact went "
        "straight to QUIC",
    ReasonCode.QUIC_HANDSHAKE_1RTT:
        "full QUIC handshake: combined transport+TLS in one round "
        "trip",
    ReasonCode.ZERO_RTT_RESUMED:
        "QUIC 0-RTT resumption; the request rode the first flight",
    ReasonCode.CROSS_HOST_TICKET:
        "QUIC session ticket issued for another hostname was accepted "
        "because the certificate covers this one (Sy et al.)",
    ReasonCode.H2_ORIGIN_FRAME_RECEIVED:
        "server advertised an ORIGIN frame for this connection",
    ReasonCode.H2_GOAWAY:
        "server sent GOAWAY; connection unusable for new requests",
    ReasonCode.H2_MISDIRECTED_421:
        "stream answered 421 Misdirected Request",
    ReasonCode.EDGE_OVERLOAD_GOAWAY:
        "edge at its concurrent-connection limit refused the "
        "connection with GOAWAY ENHANCE_YOUR_CALM after the handshake",
    ReasonCode.MIDDLEBOX_TEARDOWN_UNKNOWN_FRAME:
        "non-compliant middlebox tore the connection down on an "
        "unknown frame type (§6.7)",
    ReasonCode.FAULT_INJECTED:
        "a scheduled fault from the chaos FaultSchedule fired",
    ReasonCode.CONN_LOST_COALESCED:
        "an injected fault killed a connection that was carrying "
        "more than one hostname (coalescing blast radius)",
    ReasonCode.RETRY_BACKOFF:
        "request lost its connection to an injected fault and was "
        "re-dialed after deterministic jittered backoff",
    ReasonCode.RETRY_EXHAUSTED:
        "request kept losing connections until the retry budget ran "
        "out; surfaced as a failed request",
    ReasonCode.STALE_DNS_SERVED:
        "resolver served an expired cache entry because the "
        "authoritative path was faulted (stale-answer fallback)",
}


def taxonomy_table() -> List[Tuple[str, str]]:
    """``(code, description)`` rows in enum declaration order."""
    return [(code.value, REASON_DESCRIPTIONS[code])
            for code in ReasonCode]
