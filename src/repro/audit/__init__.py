"""``repro.audit`` -- the coalescing decision-audit subsystem.

Three pieces:

* :mod:`~repro.audit.reasons` -- the closed :class:`ReasonCode`
  taxonomy every decision point emits;
* :mod:`~repro.audit.log` -- the :class:`AuditLog` event stream that
  rides the telemetry plumbing (deterministic under ``--jobs``,
  merged in shard order, canonical JSONL export);
* :mod:`~repro.audit.reconcile` -- the exact decomposition of the
  measured-vs-ideal Figure 3 gaps into named causes, with
  :mod:`~repro.audit.explain` rendering it and
  :mod:`~repro.audit.diff` comparing runs.
"""

from repro.audit.log import (  # noqa: F401
    NULL_AUDIT,
    AuditEvent,
    AuditLog,
    NullAuditLog,
    events_from_jsonl,
    events_to_jsonl,
)
from repro.audit.reasons import (  # noqa: F401
    REASON_DESCRIPTIONS,
    ReasonCode,
    UnknownReasonCode,
    reason_code,
    taxonomy_table,
)

__all__ = [
    "AuditEvent",
    "AuditLog",
    "NULL_AUDIT",
    "NullAuditLog",
    "REASON_DESCRIPTIONS",
    "ReasonCode",
    "UnknownReasonCode",
    "events_from_jsonl",
    "events_to_jsonl",
    "reason_code",
    "taxonomy_table",
]
