"""``repro audit-diff``: run-to-run decision comparison.

Compares two audit JSONL exports by their final per-request decision
events: which (page, hostname, path) requests changed how they were
served (decision), why (reason code), or with what status.  Both
inputs are validated against the closed taxonomy on parse, so a log
written by a different (newer, buggier) build cannot smuggle unknown
codes through the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.render import render_table
from repro.audit.log import AuditEvent, events_from_jsonl
from repro.audit.reconcile import DecisionKey, decision_index


@dataclass(frozen=True)
class DecisionChange:
    """One request whose audited verdict differs between the runs."""

    key: DecisionKey
    before: Tuple[str, str, object]  # (decision, reason, status)
    after: Tuple[str, str, object]


@dataclass
class AuditDiff:
    """The comparison of two decision streams."""

    changed: List[DecisionChange] = field(default_factory=list)
    only_in_a: List[DecisionKey] = field(default_factory=list)
    only_in_b: List[DecisionKey] = field(default_factory=list)
    common: int = 0

    @property
    def clean(self) -> bool:
        return not (self.changed or self.only_in_a or self.only_in_b)


def _verdict(event: AuditEvent) -> Tuple[str, str, object]:
    return (
        event.decision, event.reason, event.attrs.get("status", "")
    )


def diff_decisions(
    events_a: List[AuditEvent], events_b: List[AuditEvent]
) -> AuditDiff:
    """Compare the final decisions of two audit event streams."""
    index_a = decision_index(events_a)
    index_b = decision_index(events_b)
    diff = AuditDiff()
    for key in sorted(index_a):
        if key not in index_b:
            diff.only_in_a.append(key)
            continue
        diff.common += 1
        before = _verdict(index_a[key])
        after = _verdict(index_b[key])
        if before != after:
            diff.changed.append(
                DecisionChange(key=key, before=before, after=after)
            )
    for key in sorted(index_b):
        if key not in index_a:
            diff.only_in_b.append(key)
    return diff


def load_audit_jsonl(path) -> List[AuditEvent]:
    """Read one audit JSONL export, validating every reason code."""
    with open(path, "r", encoding="utf-8") as handle:
        return events_from_jsonl(handle.read())


def render_diff(diff: AuditDiff, label_a: str = "A",
                label_b: str = "B") -> str:
    """Human-readable comparison report (stdout content)."""
    if diff.clean:
        return (
            f"audit-diff: {diff.common} decisions compared, "
            "no changes"
        )
    sections: List[str] = []
    if diff.changed:
        rows = []
        for change in diff.changed:
            page, hostname, path = change.key
            rows.append([
                page, f"{hostname}{path}",
                "/".join(str(part) for part in change.before),
                "/".join(str(part) for part in change.after),
            ])
        sections.append(render_table(
            f"changed decisions ({len(diff.changed)})",
            ["page", "request", label_a, label_b],
            rows,
        ))
    for label, keys in ((label_a, diff.only_in_a),
                        (label_b, diff.only_in_b)):
        if keys:
            sections.append(render_table(
                f"requests only in {label} ({len(keys)})",
                ["page", "request"],
                [[page, f"{hostname}{path}"]
                 for page, hostname, path in keys],
            ))
    sections.append(
        f"audit-diff: {diff.common} decisions compared, "
        f"{len(diff.changed)} changed, "
        f"{len(diff.only_in_a)} only in {label_a}, "
        f"{len(diff.only_in_b)} only in {label_b}"
    )
    return "\n\n".join(sections)
