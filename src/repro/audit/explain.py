"""Rendering for ``repro explain``: annotated waterfalls plus the
aggregate miss-reason breakdown tables.

The waterfall is the Figure 2 timeline with one extra column: the
audited decision (how the request was served) and its
:class:`~repro.audit.reasons.ReasonCode`.  The breakdown tables
decompose the measured-vs-ideal Figure 3 gaps into the named causes
computed by :mod:`repro.audit.reconcile`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.render import render_table
from repro.analysis.waterfall import render_waterfall
from repro.audit.log import AuditEvent
from repro.audit.reasons import REASON_DESCRIPTIONS, ReasonCode
from repro.audit.reconcile import (
    METRICS,
    DecisionKey,
    GapBreakdown,
    decision_index,
    reconcile_result,
)
from repro.web.har import HarArchive, HarEntry


def _annotator(
    archive: HarArchive, decisions: Dict[DecisionKey, AuditEvent]
):
    def annotate(entry: HarEntry) -> str:
        event = decisions.get(
            (archive.page.url, entry.hostname, entry.path)
        )
        if event is None:
            return "?"
        return f"{event.decision}:{event.reason}"

    return annotate


def render_page_decisions(
    archive: HarArchive,
    decisions: Dict[DecisionKey, AuditEvent],
    width: int = 56,
    limit: Optional[int] = None,
) -> str:
    """One page's annotated waterfall, headed by its URL and verdict."""
    page = archive.page
    status = "ok" if page.success else \
        f"failed ({page.failure_reason or 'unknown'})"
    header = (
        f"page {page.url} [{status}] "
        f"requests={len(archive.entries)} "
        f"extra_tls={page.extra_tls_connections}"
    )
    if not archive.entries:
        return f"{header}\n(no requests recorded)"
    return "\n".join([
        header,
        render_waterfall(
            archive, width=width, limit=limit,
            annotate=_annotator(archive, decisions),
        ),
    ])


def render_breakdown_table(breakdown: GapBreakdown) -> str:
    """One metric's reconciliation as a table of named buckets."""
    rows: List[Sequence[object]] = []
    for bucket, counter in (
        ("baseline", breakdown.baseline),
        ("excess", breakdown.excess),
        ("credit", breakdown.credits),
    ):
        for code, count in sorted(
            counter.items(), key=lambda item: (-item[1], item[0])
        ):
            rows.append([
                bucket, code, count,
                REASON_DESCRIPTIONS[ReasonCode(code)],
            ])
    rows.append([
        "total",
        f"measured={breakdown.measured} ideal={breakdown.ideal}",
        breakdown.gap,
        "gap = sum(excess) - sum(credits)"
        + ("" if breakdown.reconciles() else "  [DOES NOT RECONCILE]"),
    ])
    title = (
        f"{breakdown.metric} gap vs ideal-{breakdown.model}: "
        f"measured {breakdown.measured} - ideal {breakdown.ideal} "
        f"= {breakdown.gap}"
    )
    return render_table(
        title, ["bucket", "reason", "count", "description"], rows
    )


def render_explanation(
    archives: Sequence[HarArchive],
    events: Iterable[AuditEvent],
    pages: Optional[int] = None,
    metrics: Sequence[str] = METRICS,
    models: Sequence[str] = ("origin", "ip"),
    width: int = 56,
) -> str:
    """The full ``repro explain`` report: waterfalls, then breakdowns.

    ``pages`` limits how many per-page waterfalls render (None = all);
    the breakdown always aggregates every successful page.
    """
    events = list(events)
    decisions = decision_index(events)
    sections: List[str] = []
    shown = archives if pages is None else archives[:pages]
    for archive in shown:
        sections.append(
            render_page_decisions(archive, decisions, width=width)
        )
    if pages is not None and len(archives) > pages:
        sections.append(
            f"({len(archives) - pages} more pages not shown; "
            "use --pages to render them)"
        )
    breakdowns = reconcile_result(events=events, archives=archives,
                                  models=models)
    for model in models:
        for metric in metrics:
            sections.append(
                render_breakdown_table(breakdowns[model][metric])
            )
    return "\n\n".join(sections)


def render_taxonomy() -> str:
    """The full reason-code taxonomy as a table (for the docs and
    ``repro explain --taxonomy``)."""
    from repro.audit.reasons import taxonomy_table

    return render_table(
        "reason-code taxonomy",
        ["code", "description"],
        taxonomy_table(),
    )
