"""The decision-audit log.

One :class:`AuditLog` per simulated world records every
coalescing-relevant decision as a typed :class:`AuditEvent` carrying a
:class:`~repro.audit.reasons.ReasonCode`.  Like spans, events are
timestamped on the simulated clock and sequence-numbered in emission
order, so a shard's log is deterministic and shard logs merge in shard
order into a stream that is byte-identical whatever ``--jobs`` count
produced it.

:data:`NULL_AUDIT` is the shared disabled instance (``enabled`` False,
``record`` a no-op) that every layer defaults to, mirroring
``NULL_TRACER``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.audit.reasons import ReasonCode, reason_code


@dataclass
class AuditEvent:
    """One recorded decision.

    ``kind`` names the decision point (``decision`` is the final
    per-request verdict; ``lookup``/``speculative`` come from the
    pool; ``dns``/``tls``/``h2``/``middlebox`` from their layers),
    ``reason`` is the taxonomy code, and ``decision`` (on request
    events) is how the request was ultimately served.
    """

    seq: int
    kind: str
    reason: str
    at_ms: float
    page: str = ""
    hostname: str = ""
    path: str = ""
    decision: str = ""
    shard: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc = {
            "seq": self.seq,
            "kind": self.kind,
            "reason": self.reason,
            "at_ms": round(self.at_ms, 6),
            "shard": self.shard,
        }
        if self.page:
            doc["page"] = self.page
        if self.hostname:
            doc["hostname"] = self.hostname
        if self.path:
            doc["path"] = self.path
        if self.decision:
            doc["decision"] = self.decision
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "AuditEvent":
        return cls(
            seq=int(doc["seq"]),
            kind=str(doc["kind"]),
            reason=reason_code(str(doc["reason"])).value,
            at_ms=float(doc["at_ms"]),
            page=str(doc.get("page", "")),
            hostname=str(doc.get("hostname", "")),
            path=str(doc.get("path", "")),
            decision=str(doc.get("decision", "")),
            shard=int(doc.get("shard", 0)),
            attrs=dict(doc.get("attrs", {})),
        )

    @property
    def code(self) -> ReasonCode:
        return ReasonCode(self.reason)


class AuditLog:
    """Collects :class:`AuditEvent` against a simulated clock."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.events: List[AuditEvent] = []

    def record(
        self,
        kind: str,
        reason: ReasonCode,
        page: str = "",
        hostname: str = "",
        path: str = "",
        decision: str = "",
        **attrs,
    ) -> AuditEvent:
        event = AuditEvent(
            seq=len(self.events),
            kind=kind,
            reason=ReasonCode(reason).value,
            at_ms=self._clock(),
            page=page,
            hostname=hostname,
            path=path,
            decision=decision,
            attrs=attrs,
        )
        self.events.append(event)
        return event


class NullAuditLog(AuditLog):
    """Disabled log: ``record`` does nothing and keeps nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def record(self, kind, reason, page="", hostname="", path="",
               decision="", **attrs):
        return None


#: The shared disabled instance every layer defaults to.
NULL_AUDIT = NullAuditLog()


def events_to_jsonl(events: Iterable[AuditEvent]) -> str:
    """Canonical JSONL: sorted keys, compact separators, one event per
    line -- byte-identical for identical event streams."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True,
                   separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> List[AuditEvent]:
    """Parse :func:`events_to_jsonl` output, validating every reason
    code against the closed taxonomy
    (:class:`~repro.audit.reasons.UnknownReasonCode` on violation)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(AuditEvent.from_dict(json.loads(line)))
    return events
