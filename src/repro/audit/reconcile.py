"""Decomposing the measured-vs-ideal gap into named causes.

The Figure 3 model (:mod:`repro.core.coalescing`) says how many DNS
queries, TLS handshakes, and certificate validations a page *should*
have needed under ideal coalescing; the crawl says how many it *did*.
This module reconciles the two exactly: every measured spend and every
ideal allowance is attributed to a :class:`~repro.audit.reasons
.ReasonCode` bucket such that

* ``measured == sum(baseline) + sum(excess)`` and
* ``ideal    == sum(baseline) + sum(credits)``

hold by construction, so ``gap == sum(excess) - sum(credits)`` is an
identity, not an estimate.  *Baseline* buckets are the spends the
model itself allows (the first handshake/query per service, labelled
by the service boundary that makes it necessary); *excess* buckets are
repeat spends labelled by the audited per-request decision reason;
*credit* buckets are ideal allowances the crawl never spent (cached,
cleartext, or coalesced-away services).

The walk mirrors :func:`repro.core.coalescing.measured_counts` and
:func:`~repro.core.coalescing._service_count` entry for entry -- same
status filter, same unplaceable handling -- which is what makes the
reconciliation exact against :func:`repro.core.predictions.figure3`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.audit.log import AuditEvent
from repro.audit.reasons import ReasonCode
from repro.core.grouping import ServiceGrouper, by_asn, by_ip
from repro.web.har import HarArchive, HarEntry

#: The two Figure 3 ideal models, with the baseline code naming the
#: service boundary each one charges first contacts to.
MODELS: Dict[str, Tuple[ServiceGrouper, ReasonCode]] = {
    "origin": (by_asn, ReasonCode.MISS_DIFFERENT_AS),
    "ip": (by_ip, ReasonCode.MISS_DIFFERENT_IP),
}

#: The metrics a breakdown covers (validations mirror TLS: the model
#: and the crawl both count one validation per handshake).
METRICS = ("dns", "tls", "validations")

DecisionKey = Tuple[str, str, str]


def decision_index(
    events: Iterable[AuditEvent],
) -> Dict[DecisionKey, AuditEvent]:
    """Map ``(page, hostname, path)`` to the final decision event.

    Last event wins, so a 421 retry's second verdict supersedes the
    provisional one recorded before the retry.
    """
    index: Dict[DecisionKey, AuditEvent] = {}
    for event in events:
        if event.kind == "decision":
            index[(event.page, event.hostname, event.path)] = event
    return index


@dataclass
class GapBreakdown:
    """One metric's measured-vs-ideal reconciliation for one model."""

    metric: str
    model: str
    measured: int = 0
    ideal: int = 0
    baseline: Counter = field(default_factory=Counter)
    excess: Counter = field(default_factory=Counter)
    credits: Counter = field(default_factory=Counter)

    @property
    def gap(self) -> int:
        return self.measured - self.ideal

    def reconciles(self) -> bool:
        """The defining identity; False means an accounting bug."""
        return (
            self.measured == sum(self.baseline.values())
            + sum(self.excess.values())
            and self.ideal == sum(self.baseline.values())
            + sum(self.credits.values())
        )

    def absorb(self, other: "GapBreakdown") -> None:
        self.measured += other.measured
        self.ideal += other.ideal
        self.baseline.update(other.baseline)
        self.excess.update(other.excess)
        self.credits.update(other.credits)


def _reason_for(
    entry: HarEntry,
    archive: HarArchive,
    decisions: Dict[DecisionKey, AuditEvent],
) -> Optional[ReasonCode]:
    event = decisions.get(
        (archive.page.url, entry.hostname, entry.path)
    )
    return event.code if event is not None else None


def _failure_code(entry: HarEntry) -> ReasonCode:
    return (
        ReasonCode.MISS_MISDIRECTED_421
        if entry.status == 421
        else ReasonCode.MISS_REQUEST_FAILED
    )


def _service_entries(
    archive: HarArchive, grouper: ServiceGrouper
) -> Tuple[Dict[str, List[HarEntry]], List[HarEntry]]:
    """Successful entries per service, plus the unplaceable ones --
    the exact population :func:`~repro.core.coalescing._service_count`
    counts (``len(services) + len(unplaceable)``)."""
    services: Dict[str, List[HarEntry]] = {}
    unplaceable: List[HarEntry] = []
    for entry in archive.entries:
        if entry.status != 200:
            continue
        service = grouper(entry)
        if service is None:
            unplaceable.append(entry)
        else:
            services.setdefault(service, []).append(entry)
    return services, unplaceable


def _tls_credit(entries: Sequence[HarEntry]) -> ReasonCode:
    """Why a service the model budgets a handshake for never paid one."""
    if all(entry.protocol == "cache" for entry in entries):
        return ReasonCode.CREDIT_CACHED
    if any(not entry.secure for entry in entries):
        return ReasonCode.CREDIT_CLEARTEXT_SERVICE
    return ReasonCode.CREDIT_COALESCED_ACROSS_SERVICES


def _dns_credit(entries: Sequence[HarEntry]) -> ReasonCode:
    """Why a service the model budgets a query for never paid one."""
    if all(entry.protocol == "cache" for entry in entries):
        return ReasonCode.CREDIT_CACHED
    if any(entry.coalesced for entry in entries):
        return ReasonCode.CREDIT_COALESCED_ACROSS_SERVICES
    return ReasonCode.CREDIT_NO_WIRE_QUERY


def reconcile_tls(
    archive: HarArchive,
    decisions: Dict[DecisionKey, AuditEvent],
    model: str,
) -> GapBreakdown:
    """Attribute every TLS handshake (and every unspent allowance)."""
    grouper, baseline_code = MODELS[model]
    out = GapBreakdown(metric="tls", model=model)
    out.measured = archive.tls_connection_count()
    services, unplaceable = _service_entries(archive, grouper)
    out.ideal = len(services) + len(unplaceable)
    spent = set()
    for entry in archive.entries:
        if not entry.new_tls_connection:
            continue
        if entry.status != 200:
            out.excess[_failure_code(entry).value] += 1
            continue
        service = grouper(entry)
        if service is None:
            out.baseline[ReasonCode.MISS_UNPLACEABLE.value] += 1
        elif service not in spent:
            spent.add(service)
            out.baseline[baseline_code.value] += 1
        else:
            reason = _reason_for(entry, archive, decisions)
            out.excess[
                (reason or ReasonCode.MISS_UNATTRIBUTED).value
            ] += 1
    if archive.page.extra_tls_connections:
        out.excess[ReasonCode.MISS_SPECULATIVE_RACE.value] += \
            archive.page.extra_tls_connections
    for service, entries in services.items():
        if service not in spent:
            out.credits[_tls_credit(entries).value] += 1
    for entry in unplaceable:
        if not entry.new_tls_connection:
            out.credits[_tls_credit([entry]).value] += 1
    return out


def reconcile_dns(
    archive: HarArchive,
    decisions: Dict[DecisionKey, AuditEvent],
    model: str,
) -> GapBreakdown:
    """Attribute every wire DNS query (and every unspent allowance)."""
    grouper, baseline_code = MODELS[model]
    out = GapBreakdown(metric="dns", model=model)
    out.measured = archive.dns_query_count()
    services, unplaceable = _service_entries(archive, grouper)
    out.ideal = len(services) + len(unplaceable)
    spent = set()
    for entry in archive.entries:
        if not entry.timings.used_dns:
            continue
        if entry.status != 200:
            out.excess[_failure_code(entry).value] += 1
            continue
        service = grouper(entry)
        if service is None:
            out.baseline[ReasonCode.MISS_UNPLACEABLE.value] += 1
        elif service not in spent:
            spent.add(service)
            out.baseline[baseline_code.value] += 1
        else:
            reason = _reason_for(entry, archive, decisions)
            if reason is not None and reason.is_hit:
                # The connection was reused, yet a wire query was
                # still paid first -- the render-blocking DNS the
                # ideal ORIGIN client eliminates (§6.8).
                out.excess[
                    ReasonCode.MISS_DNS_BEFORE_REUSE.value
                ] += 1
            else:
                out.excess[
                    (reason or ReasonCode.MISS_UNATTRIBUTED).value
                ] += 1
    for service, entries in services.items():
        if service not in spent:
            out.credits[_dns_credit(entries).value] += 1
    for entry in unplaceable:
        if not entry.timings.used_dns:
            out.credits[_dns_credit([entry]).value] += 1
    return out


def reconcile_page(
    archive: HarArchive,
    decisions: Dict[DecisionKey, AuditEvent],
    model: str = "origin",
) -> Dict[str, GapBreakdown]:
    """All three metric breakdowns for one page under one model.

    Validations reuse the TLS decomposition (both the crawl and the
    model count one validation per handshake).
    """
    tls = reconcile_tls(archive, decisions, model)
    validations = GapBreakdown(
        metric="validations", model=model,
        measured=tls.measured, ideal=tls.ideal,
        baseline=Counter(tls.baseline), excess=Counter(tls.excess),
        credits=Counter(tls.credits),
    )
    return {
        "dns": reconcile_dns(archive, decisions, model),
        "tls": tls,
        "validations": validations,
    }


def reconcile_result(
    archives: Sequence[HarArchive],
    events: Iterable[AuditEvent],
    models: Sequence[str] = ("origin", "ip"),
) -> Dict[str, Dict[str, GapBreakdown]]:
    """Aggregate breakdowns over the *successful* archives (the same
    population :func:`repro.core.predictions.figure3` draws from).

    Returns ``{model: {metric: GapBreakdown}}``.
    """
    decisions = decision_index(events)
    out: Dict[str, Dict[str, GapBreakdown]] = {
        model: {
            metric: GapBreakdown(metric=metric, model=model)
            for metric in METRICS
        }
        for model in models
    }
    for archive in archives:
        if not archive.page.success:
            continue
        for model in models:
            page = reconcile_page(archive, decisions, model)
            for metric in METRICS:
                out[model][metric].absorb(page[metric])
    return out
