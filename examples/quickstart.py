#!/usr/bin/env python
"""Quickstart: load one page with different browsers and compare.

Builds a tiny simulated world -- one CDN edge serving a site, its
shards, and a third-party library host -- then loads the same page
with the Chromium model (IP-based coalescing only) and the Firefox
model with ORIGIN frame support, printing what each one did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.browser import BrowserContext, BrowserEngine, ChromiumPolicy, \
    FirefoxPolicy
from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.h2 import H2Server, ServerConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.web import ContentType, Subresource, WebPage


def build_world():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=25.0,
                                              bandwidth_bpms=2500.0)),
    )
    root_ca = CertificateAuthority("Example Root CA",
                                   rng=np.random.default_rng(1))
    trust = TrustStore([root_ca])

    edge = network.add_host(Host("edge", "cdn", ["10.0.0.1", "10.0.0.2"]))
    client = network.add_host(Host("client", "home", ["10.9.0.1"]))

    # One certificate covering the site, its shard, and the library CDN
    # -- the least-effort change the paper's model recommends (§4.3).
    cert = root_ca.issue(
        "www.example.com",
        ("www.example.com", "static.example.com", "cdnjs.example-cdn.com"),
    )
    server = H2Server(network, edge, ServerConfig(
        chains=[root_ca.chain_for(cert)],
        serves=["www.example.com", "static.example.com",
                "cdnjs.example-cdn.com"],
        origin_sets={"*": ("https://static.example.com",
                           "https://cdnjs.example-cdn.com")},
    ))
    server.listen_all()

    authority = AuthoritativeServer()
    zone = Zone("example.com")
    zone.add_a("www.example.com", ["10.0.0.1"])
    zone.add_a("static.example.com", ["10.0.0.1"])
    authority.add_zone(zone)
    cdn_zone = Zone("example-cdn.com")
    # Different address: IP-based coalescing cannot see the match.
    cdn_zone.add_a("cdnjs.example-cdn.com", ["10.0.0.2"])
    authority.add_zone(cdn_zone)

    return network, client, trust, root_ca, authority, server


PAGE = WebPage(
    hostname="www.example.com",
    resources=[
        Subresource("static.example.com", "/app.js",
                    ContentType.APPLICATION_JAVASCRIPT, 20_000),
        Subresource("static.example.com", "/style.css",
                    ContentType.TEXT_CSS, 14_000),
        Subresource("cdnjs.example-cdn.com", "/lib.js",
                    ContentType.APPLICATION_JAVASCRIPT, 30_000),
    ],
)


def load_with(policy):
    network, client, trust, root_ca, authority, server = build_world()
    context = BrowserContext(
        network=network,
        client_host=client,
        resolver=CachingResolver(network.loop, authority,
                                 median_latency_ms=15.0),
        trust_store=trust,
        authorities=[root_ca],
        policy=policy,
    )
    return BrowserEngine(context).load_blocking(PAGE)


def describe(name, archive):
    print(f"\n=== {name} ===")
    print(f"  page load time: {archive.page.on_load:.0f}ms")
    print(f"  DNS queries:    {archive.dns_query_count()}")
    print(f"  TLS handshakes: {archive.tls_connection_count()}")
    for entry in archive.entries_by_start():
        setup = "reused" if entry.timings.connect < 0 else "new conn"
        flag = " (coalesced)" if entry.coalesced else ""
        print(f"    {entry.hostname:26s} {setup}{flag}")


def main():
    describe("Chromium (IP-based coalescing only)",
             load_with(ChromiumPolicy()))
    describe("Firefox with ORIGIN frames",
             load_with(FirefoxPolicy(origin_frames=True)))
    print("\nThe library host lives on a different IP, so only the "
          "ORIGIN-aware client\ncoalesces it onto the page's existing "
          "connection -- the paper's core point.")


if __name__ == "__main__":
    main()
