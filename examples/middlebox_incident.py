#!/usr/bin/env python
"""The §6.7 incident: an antivirus network agent vs the ORIGIN frame.

The HTTP/2 spec requires clients (and anything speaking HTTP/2 on
their behalf) to ignore unknown frame types.  A deployed network agent
instead tore down TLS connections when the experiment's ORIGIN frames
appeared.  This example replays the incident: detection, diagnosis,
the CDN's mitigation (pausing ORIGIN), and the vendor fix.

Run:  python examples/middlebox_incident.py
"""

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.dataset.world import build_world
from repro.deployment import BuggyMiddlebox, DeploymentExperiment
from repro.deployment.experiment import deployment_world_config


def load(world, site):
    context = BrowserContext(
        network=world.network,
        client_host=world.client_host,
        resolver=world.make_resolver(),
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=FirefoxPolicy(origin_frames=True),
        asdb=world.asdb,
    )
    return BrowserEngine(context).load_blocking(site.hosted.record.page)


def main():
    world = build_world(deployment_world_config(site_count=120, seed=77))
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    site = experiment.sample[0]

    middlebox = BuggyMiddlebox(
        world.network, protected_clients={world.client_host.name},
    )
    middlebox.install()

    print("phase 1: before the ORIGIN deployment")
    archive = load(world, site)
    print(f"  {site.root_hostname}: "
          f"{'OK' if archive.page.success else 'FAILED'} "
          f"({middlebox.stats.frames_inspected} frames inspected, "
          f"{middlebox.stats.connections_torn_down} torn down)\n")

    print("phase 2: ORIGIN frames go live")
    experiment.enable_origin_frames()
    archive = load(world, site)
    print(f"  {site.root_hostname}: "
          f"{'OK' if archive.page.success else 'FAILED'} "
          f"({middlebox.stats.unknown_frames_seen} unknown frames seen, "
          f"{middlebox.stats.connections_torn_down} connections torn "
          "down)")
    print("  -> the agent killed the TLS connection on the unknown "
          "frame type (0xC)\n")

    print("phase 3: CDN mitigation -- pause ORIGIN for affected paths")
    experiment.disable_origin_frames()
    archive = load(world, site)
    print(f"  {site.root_hostname}: "
          f"{'OK' if archive.page.success else 'FAILED'}\n")

    print("phase 4: vendor ships the fix (ignore unknown frames)")
    middlebox.fix()
    experiment.enable_origin_frames()
    archive = load(world, site)
    torn = middlebox.stats.connections_torn_down
    print(f"  {site.root_hostname}: "
          f"{'OK' if archive.page.success else 'FAILED'} "
          f"(ORIGIN live again; no new teardowns: total still {torn})")
    experiment.disable_origin_frames()
    middlebox.uninstall()


if __name__ == "__main__":
    main()
