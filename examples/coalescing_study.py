#!/usr/bin/env python
"""The §3-§4 pipeline at laptop scale.

Generates a synthetic web calibrated to the paper's tables, crawls it
with the Chromium model, characterizes the crawl (Tables 1-2, Figure
1), runs the best-case coalescing model (Figure 3), and plans the
least-effort certificate changes (§4.3).

Run:  python examples/coalescing_study.py [site_count]
"""

import sys

import numpy as np

from repro.analysis import format_pct, render_cdf, render_table
from repro.core import figure3, headline_reductions, plan_certificates, \
    provider_addition_table
from repro.dataset import characterize
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world


def main():
    site_count = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    print(f"building a {site_count}-site synthetic web ...")
    world = build_world(DatasetConfig(site_count=site_count, seed=2022))
    print(f"crawling {len(world.sites)} sites ...")
    result = Crawler(world, speculative_rate=0.10).crawl()
    ok = result.successes
    print(f"crawled: {result.success_count}/{result.attempted} "
          "successful page loads "
          f"({format_pct(result.success_count / result.attempted)}; "
          "paper: 63.51%)\n")

    rows = characterize.table1(result.archives)
    print(render_table(
        "Table 1 -- crawl summary",
        ["Rank", "Success", "#Reqs", "PLT (ms)", "#DNS", "#TLS"],
        [(r.bucket_label, r.success, f"{r.median_requests:.0f}",
          f"{r.median_plt_ms:.0f}", f"{r.median_dns:.0f}",
          f"{r.median_tls:.0f}") for r in rows],
    ))

    top_ases = characterize.table2(ok, top=5)
    print("\n" + render_table(
        "Table 2 -- top destination ASes",
        ["ASN", "Org", "#Req", "%"],
        [(asn, org, count, format_pct(share))
         for asn, org, count, share in top_ases],
    ))

    data = figure3(result.archives)
    print("\n" + render_cdf(
        "Figure 3 -- per-page DNS/TLS counts",
        [("measured DNS", data.measured_dns),
         ("measured TLS", data.measured_tls),
         ("ideal IP", data.ideal_ip),
         ("ideal ORIGIN", data.ideal_origin)],
    ))
    headline = headline_reductions(result.archives)
    print(f"\nideal ORIGIN coalescing would cut TLS handshakes by "
          f"{format_pct(headline['validation_reduction'])} and "
          f"render-blocking DNS by {format_pct(headline['dns_reduction'])}"
          "\n(paper: 68.75% and 64.28%)")

    plan = plan_certificates(world)
    print(f"\ncertificate plan: {format_pct(plan.unchanged_fraction)} "
          "of certs need no change (paper: 62.41%); "
          f"<=10 additions covers "
          f"{format_pct(plan.fraction_with_changes_at_most(10))} "
          "(paper: 92.66%)")
    for provider, sites, share, hosts in provider_addition_table(
        world, plan
    ):
        top = ", ".join(f"{h} ({format_pct(s)})" for h, _, s in hosts[:3])
        print(f"  {provider} ({sites} sites, {format_pct(share)}): "
              f"add {top}")


if __name__ == "__main__":
    main()
