#!/usr/bin/env python
"""Population-scale traffic, end to end.

Drives the simulated CDN with a small population of concurrent users
-- Chromium and Firefox cohorts, revisits arriving with warm caches
and TLS tickets -- and compares what the *edge fleet* sees under the
paper's three deployment answers: today's baseline, a fleet-wide
ORIGIN-frame rollout, and ideal SAN coverage.  Ends with the
Figure 8-style coalesced-request share over time for the ORIGIN run.

Run:  python examples/traffic_study.py [users]
"""

import sys

from repro.analysis import format_pct, render_table
from repro.traffic import (
    ScenarioConfig,
    run_scenario,
    run_what_if,
    scenario_for_policy,
    what_if_rows,
)


def main(users: int = 24) -> None:
    base = ScenarioConfig(
        users=users,
        site_count=8,
        seed=2022,
        duration_ms=12_000.0,
        mean_visits_per_user=2.0,
        bucket_ms=3_000.0,
    )
    print(f"simulating {users} users x 3 policy scenarios ...")
    results = run_what_if(base)
    headers, rows = what_if_rows(results)
    print("\n" + render_table(
        "What-if: edge load under coalescing policies "
        "(paper: coalescing removes connections and handshakes)",
        headers, rows,
    ))

    baseline = results[0][1]
    origin = results[1][1]
    saved = baseline.totals.connections - origin.totals.connections
    print(f"\nfleet-wide ORIGIN deployment removed {saved} edge "
          f"connections ({saved / baseline.totals.connections:.1%} of "
          f"baseline) and "
          f"{baseline.totals.handshakes - origin.totals.handshakes} "
          "TLS handshakes\n")

    print("re-running the ORIGIN scenario with audit for the "
          "time series ...")
    aggregate, trace = run_scenario(scenario_for_policy(base, "origin"))
    series_rows = [
        (f"{start / 1000.0:.0f}s", requests, format_pct(share))
        for start, share, requests in aggregate.coalesced_share_series()
    ]
    print("\n" + render_table(
        "Figure 8-style series: coalesced share of edge requests "
        "over time",
        ["Bucket", "Requests", "Coalesced"],
        series_rows,
    ))
    print(f"\naudit: {len(trace.audit)} reason-coded decisions "
          "reconcile the counters above")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
