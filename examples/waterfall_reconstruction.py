#!/usr/bin/env python
"""Figure 2, live: a page-load waterfall before and after coalescing.

Loads a sharded page with the Chromium model, renders its waterfall,
then runs the §4.1 reconstruction (ideal ORIGIN coalescing by origin
AS) and renders the compacted timeline next to it.

Run:  python examples/waterfall_reconstruction.py
"""

import numpy as np

from repro.analysis import render_waterfall
from repro.browser import BrowserContext, BrowserEngine, ChromiumPolicy
from repro.core import by_asn, reconstruct
from repro.dnssim import AuthoritativeServer, CachingResolver, Zone
from repro.h2 import H2Server, ServerConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.web import ContentType, Subresource, WebPage

PAGE = WebPage(
    hostname="www.example.com",
    resources=[
        Subresource("static.example.com", "/js/jquery.js",
                    ContentType.APPLICATION_JAVASCRIPT, 20_000,
                    discovery_delay_ms=8.0),
        Subresource("static.example.com", "/css/style.css",
                    ContentType.TEXT_CSS, 14_000,
                    discovery_delay_ms=10.0),
        Subresource("fonts.cdnhost.com", "/fonts/arial.woff",
                    ContentType.FONT_WOFF2, 28_000,
                    parent="/css/style.css", discovery_delay_ms=6.0),
        Subresource("assets.cdnhost.com", "/js/bootstrap.js",
                    ContentType.APPLICATION_JAVASCRIPT, 30_000,
                    discovery_delay_ms=12.0),
        Subresource("analytics.tracker.com", "/script.js",
                    ContentType.TEXT_JAVASCRIPT, 3_000,
                    discovery_delay_ms=20.0),
    ],
)


def build_world():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=30.0,
                                              bandwidth_bpms=1000.0)),
    )
    ca = CertificateAuthority("WF CA", rng=np.random.default_rng(2))
    trust = TrustStore([ca])
    cdn = network.add_host(
        Host("cdn", "edge", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
    )
    tracker = network.add_host(Host("tracker", "far", ["10.5.0.1"]))
    client = network.add_host(Host("client", "home", ["10.9.0.1"]))

    cdn_cert = ca.issue("www.example.com", (
        "www.example.com", "static.example.com",
        "fonts.cdnhost.com", "assets.cdnhost.com",
    ))
    cdn_server = H2Server(network, cdn, ServerConfig(
        chains=[ca.chain_for(cdn_cert)],
        serves=["www.example.com", "static.example.com",
                "fonts.cdnhost.com", "assets.cdnhost.com"],
        think_time_ms=25.0,
    ))
    cdn_server.listen_all()

    tracker_cert = ca.issue("analytics.tracker.com", ())
    tracker_server = H2Server(network, tracker, ServerConfig(
        chains=[ca.chain_for(tracker_cert)],
        serves=["analytics.tracker.com"],
        think_time_ms=60.0,
    ))
    tracker_server.listen_all()

    authority = AuthoritativeServer()
    example = Zone("example.com")
    example.add_a("www.example.com", ["10.0.0.1"])
    example.add_a("static.example.com", ["10.0.0.2"])
    authority.add_zone(example)
    cdnhost = Zone("cdnhost.com")
    cdnhost.add_a("fonts.cdnhost.com", ["10.0.0.3"])
    cdnhost.add_a("assets.cdnhost.com", ["10.0.0.3"])
    authority.add_zone(cdnhost)
    trackerzone = Zone("tracker.com")
    trackerzone.add_a("analytics.tracker.com", ["10.5.0.1"])
    authority.add_zone(trackerzone)

    from repro.web import AsDatabase
    asdb = AsDatabase()
    asdb.register("10.0.0.0/24", 13335, "cdnhost")
    asdb.register("10.5.0.0/24", 64500, "tracker-net")

    context = BrowserContext(
        network=network,
        client_host=client,
        resolver=CachingResolver(network.loop, authority,
                                 median_latency_ms=22.0),
        trust_store=trust,
        authorities=[ca],
        policy=ChromiumPolicy(),
        asdb=asdb,
    )
    return BrowserEngine(context)


def main():
    engine = build_world()
    archive = engine.load_blocking(PAGE)
    print("MEASURED (Chromium, IP-based coalescing only)\n")
    print(render_waterfall(archive))
    print(f"\npage load time: {archive.page.on_load:.0f}ms; "
          f"{archive.dns_query_count()} DNS queries, "
          f"{archive.tls_connection_count()} TLS handshakes\n")

    result = reconstruct(archive, by_asn)
    rebuilt = result.reconstructed
    print("RECONSTRUCTED (ideal ORIGIN coalescing, §4.1)\n")
    print(render_waterfall(rebuilt))
    print(f"\npage load time: {rebuilt.page.on_load:.0f}ms "
          f"({result.plt_improvement * 100:.0f}% faster); "
          f"{len(result.coalesced_urls)} requests coalesced; "
          "the tracker on another AS keeps its own connection")


if __name__ == "__main__":
    main()
