#!/usr/bin/env python
"""Wire-level demo of the ORIGIN frame (RFC 8336).

Shows the actual protocol mechanics the paper implemented server-side:

1. the server advertises its origin set in an ORIGIN frame on stream 0,
   right after SETTINGS;
2. the client coalesces a request for an advertised hostname onto the
   existing connection (SNI != Host -- the paper's passive flag bit);
3. a request for an authority the server is *not* configured for draws
   a ``421 Misdirected Request``;
4. an ORIGIN-unaware client ignores the frame and keeps working
   (fail-open).

Run:  python examples/origin_frame_server.py
"""

import numpy as np

from repro.h2 import (
    H2ClientSession,
    H2Server,
    OriginFrame,
    ServerConfig,
    TlsClientConfig,
    parse_frame,
)
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore


def main():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=20.0,
                                              bandwidth_bpms=1e5)),
    )
    ca = CertificateAuthority("Demo CA", rng=np.random.default_rng(3))
    trust = TrustStore([ca])

    edge = network.add_host(Host("edge", "cdn", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "home", ["10.9.0.1"]))

    cert = ca.issue(
        "www.example.com",
        ("www.example.com", "thirdparty.cdn.com"),
    )
    origin_set = ("https://thirdparty.cdn.com",)
    server = H2Server(network, edge, ServerConfig(
        chains=[ca.chain_for(cert)],
        serves=["www.example.com", "thirdparty.cdn.com"],
        origin_sets={"*": origin_set},
    ))
    server.listen_all()

    # --- The frame itself, on the wire -------------------------------
    frame = OriginFrame(origins=origin_set)
    wire = frame.serialize()
    print("ORIGIN frame bytes:", wire.hex(" "))
    reparsed, _ = parse_frame(wire)
    print(f"  type=0x{reparsed.type_code:X} stream={reparsed.stream_id} "
          f"origins={list(reparsed.origins)}\n")

    # --- An ORIGIN-aware client --------------------------------------
    tls = TlsClientConfig(
        sni="www.example.com", trust_store=trust, authorities=[ca],
        now=network.loop.now,
    )
    session = H2ClientSession(network, client_host, "10.0.0.1", tls)
    session.on_origin_received = lambda origins: print(
        f"client received ORIGIN: {list(origins)}"
    )

    responses = []

    def go():
        session.request("www.example.com", "/", responses.append)
        # Coalesced: same connection, different authority.
        session.request("thirdparty.cdn.com", "/lib.js",
                        responses.append)
        # Misconfigured: in nobody's serves list -> 421.
        session.request("unknown.example.net", "/", responses.append)

    session.connect(on_ready=go)
    network.loop.run_until_idle()

    for response in responses:
        print(f"  {response.authority:22s} -> {response.status}")
    print(f"server accepted {server.stats.connections} connection(s), "
          f"answered {server.stats.requests} requests, "
          f"{server.stats.misdirected} misdirected\n")

    # --- An ORIGIN-unaware client fails open --------------------------
    legacy = H2ClientSession(network, client_host, "10.0.0.1", tls,
                             origin_aware=False)
    legacy_responses = []
    legacy.connect(
        on_ready=lambda: legacy.request("www.example.com", "/",
                                        legacy_responses.append)
    )
    network.loop.run_until_idle()
    print("legacy (ORIGIN-unaware) client: origin set "
          f"{set(legacy.origin_set) or '{}'} -- request status "
          f"{legacy_responses[0].status} (fail-open, RFC 7540 §4.1)")


if __name__ == "__main__":
    main()
