#!/usr/bin/env python
"""The §5 deployment, end to end.

Selects the sample, reissues certificates with byte-equal SAN
additions (Figure 6), turns on ORIGIN frames at the CDN, then measures
actively (Figure 7b) and passively (the SNI != Host flag bit, §5.2's
logging pipeline).

Run:  python examples/cdn_deployment.py
"""

from repro.analysis import format_pct, render_table
from repro.dataset.world import build_world
from repro.deployment import (
    ActiveMeasurement,
    DeploymentExperiment,
    PassivePipeline,
)
from repro.deployment.experiment import Group, deployment_world_config


def main():
    print("building the deployment world ...")
    world = build_world(deployment_world_config(site_count=250))
    experiment = DeploymentExperiment(world)
    print(f"sample: {len(experiment.sample)} sites "
          f"({len(experiment.sites_in(Group.EXPERIMENT))} experiment, "
          f"{len(experiment.sites_in(Group.CONTROL))} control); "
          f"{experiment.removed_subpage_only} removed as subpage-only\n")

    reissued = experiment.reissue_certificates()
    deltas = experiment.certificate_size_deltas()
    print(f"reissued {reissued} certificates; size deltas "
          f"experiment={sorted(set(deltas[Group.EXPERIMENT]))} bytes, "
          f"control={sorted(set(deltas[Group.CONTROL]))} bytes "
          "(byte-equal, Figure 6)\n")

    experiment.enable_origin_frames()
    pipeline = PassivePipeline(experiment, sampling_rate=1.0)
    pipeline.attach()

    print("running the active measurement (Firefox v96 model) ...")
    active = ActiveMeasurement(experiment, origin_frames=True)
    result = active.run()
    pipeline.detach()
    experiment.disable_origin_frames()

    rows = []
    for count in range(5):
        rows.append((
            count,
            format_pct(result.fraction_with(Group.EXPERIMENT, count)),
            format_pct(result.fraction_with(Group.CONTROL, count)),
        ))
    print("\n" + render_table(
        "Figure 7b -- new TLS connections to the third party "
        "(paper: experiment 64% zero, control 6% zero)",
        ["#New conns", "Experiment", "Control"],
        rows,
    ))

    print(f"\npassive pipeline: "
          f"{len(pipeline.third_party_records())} third-party records; "
          "coalesced connections (SNI != Host, arrivals >= 2): "
          f"experiment={pipeline.coalesced_connection_count(Group.EXPERIMENT)}, "
          f"control={pipeline.coalesced_connection_count(Group.CONTROL)}")
    print("new third-party TLS connection reduction: "
          f"{format_pct(pipeline.tls_connection_reduction())} "
          "(paper: ~50%)")


if __name__ == "__main__":
    main()
