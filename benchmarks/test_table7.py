"""Table 7: top-10 subresource hostnames."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

#: Paper: the top-10 hostnames draw 12.5% of all requests, led by
#: fonts.gstatic.com (2.23%).
PAPER_TOP10_SHARE = 0.125


def test_table7(benchmark, successes):
    rows = benchmark(characterize.table7, successes)
    print_block(render_table(
        "Table 7 -- top subresource hostnames (paper: top-10 = "
        f"{format_pct(PAPER_TOP10_SHARE)} of requests)",
        ["Hostname", "#Req", "%"],
        [(name, count, format_pct(share)) for name, count, share in rows],
    ))

    hostnames = [name for name, _, _ in rows]
    google_family = [
        name for name in hostnames
        if "google" in name or "gstatic" in name or "doubleclick" in name
    ]
    assert len(google_family) >= 3  # Google hosts dominate Table 7
    top10_share = sum(share for _, _, share in rows)
    assert 0.03 < top10_share < 0.5
