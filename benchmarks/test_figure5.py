"""Figure 5: ranked tail distribution of SAN sizes before/after."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_table
from repro.core import plan_certificates

#: Paper: 62.41% of certs unchanged; <=10 changes covers 92.66%; sites
#: with >250 SANs grow 230 -> 529 (+130%).
PAPER = {"unchanged": 0.6241, "at_most_10": 0.9266}


@pytest.fixture(scope="module")
def plan(crawl):
    world, _ = crawl
    return plan_certificates(world)


def test_figure5(benchmark, plan):
    series = benchmark(plan.figure5_series)
    probe_ranks = [0, 1, 4, 9, 49, len(series["existing"]) - 1]
    rows = [
        (rank + 1, series["existing"][rank], series["changes"][rank],
         series["ideal"][rank])
        for rank in probe_ranks if rank < len(series["existing"])
    ]
    print_block(render_table(
        "Figure 5 -- sites ranked by existing SAN size "
        f"(paper: {format_pct(PAPER['unchanged'])} unchanged, "
        f"<=10 changes covers {format_pct(PAPER['at_most_10'])})",
        ["Rank", "Existing SAN", "Changes", "Ideal SAN (ranked)"],
        rows,
    ))
    unchanged = plan.unchanged_fraction
    at_most_10 = plan.fraction_with_changes_at_most(10)
    over_250 = plan.sites_with_san_over(250)
    print(f"unchanged: {format_pct(unchanged)}; <=10 changes: "
          f"{format_pct(at_most_10)}; >250 SANs: "
          f"{over_250[0]} -> {over_250[1]}; largest ideal SAN: "
          f"{plan.largest_ideal_san()}")

    assert 0.4 <= unchanged <= 0.85
    assert at_most_10 >= 0.85
    assert over_250[1] >= over_250[0]
