"""Table 3: requests by protocol, and secure share."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

PAPER = {"h2": 0.7364, "http/1.1": 0.1909, "secure": 0.9853}


def test_table3(benchmark, successes):
    protocols, security = benchmark(characterize.table3, successes)
    total = sum(protocols.values())
    table = render_table(
        "Table 3 -- requests by protocol "
        f"(paper: h2 {format_pct(PAPER['h2'])}, "
        f"http/1.1 {format_pct(PAPER['http/1.1'])}, "
        f"secure {format_pct(PAPER['secure'])})",
        ["Protocol", "#Req", "%"],
        [
            (name, count, format_pct(count / total))
            for name, count in sorted(protocols.items(),
                                      key=lambda kv: -kv[1])
        ] + [
            ("secure", security["secure"],
             format_pct(security["secure"] / total)),
            ("insecure", security["insecure"],
             format_pct(security["insecure"] / total)),
        ],
    )
    print_block(table)

    assert protocols["h2"] / total > 0.6
    assert 0.05 < protocols["http/1.1"] / total < 0.35
    insecure = security["insecure"] / total
    assert 0.002 < insecure < 0.04  # paper: 1.47%
