"""§6.2: the privacy benefit of coalescing -- plaintext signals removed."""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import format_pct, render_table
from repro.core import compare_privacy
from repro.core.privacy import exposure_from_archive


def test_privacy_signal_reduction(benchmark, successes):
    comparison = benchmark.pedantic(
        compare_privacy, args=(successes,), rounds=1, iterations=1,
    )
    medians = comparison.median_signals()
    hidden = comparison.median_hostnames_hidden()
    print_block(render_table(
        "Privacy (paper §6.2) -- on-path plaintext signals per page",
        ["Client", "median signals (DNS + SNI)"],
        [
            ("measured (today)", f"{medians['measured']:.0f}"),
            ("ideal ORIGIN client", f"{medians['ideal_origin']:.0f}"),
        ],
    ))
    print(f"signal reduction: "
          f"{format_pct(comparison.signal_reduction())}; "
          f"median hostnames hidden entirely per page: {hidden:.0f}")

    assert comparison.signal_reduction() > 0.2
    assert hidden >= 1


def test_privacy_defense_stacking(benchmark, successes):
    """ECH + encrypted DNS + coalescing compose; coalescing removes
    signals the other two cannot (the request itself)."""

    def stack():
        rows = {}
        for name, kwargs in (
            ("plaintext everything", {}),
            ("+ encrypted DNS", {"encrypted_dns": True}),
            ("+ ECH too", {"encrypted_dns": True, "ech": True}),
        ):
            signals = [
                exposure_from_archive(a, **kwargs).total_signals
                for a in successes
            ]
            rows[name] = float(np.median(signals))
        return rows

    rows = benchmark(stack)
    print_block(render_table(
        "Privacy -- defense stacking (median plaintext signals/page)",
        ["Defenses", "Signals"],
        [(name, f"{value:.0f}") for name, value in rows.items()],
    ))
    assert rows["+ encrypted DNS"] <= rows["plaintext everything"]
    assert rows["+ ECH too"] <= rows["+ encrypted DNS"]
    assert rows["+ ECH too"] == 0.0
