"""§6.5: secondary certificate frames vs growing the SAN.

Compares the two ways to give one connection authority over many
hostnames: a single large-SAN certificate (bloats every TLS handshake)
vs secondary CERTIFICATE frames (handshake stays small; authority
streams in afterwards).
"""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import render_table
from repro.h2 import H2ClientSession, H2Server, ServerConfig, \
    TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import (
    CertificateAuthority,
    HandshakeConfig,
    IssuancePolicy,
    TrustStore,
    simulate_handshake,
)

EXTRA_NAMES = 800  # hostnames beyond the site's own


def build(world_mode):
    """world_mode: 'big-san' or 'secondary'."""
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=30.0,
                                              bandwidth_bpms=2500.0)),
    )
    ca = CertificateAuthority(
        "SC Bench CA", rng=np.random.default_rng(8),
        policy=IssuancePolicy(max_san_names=5000),
    )
    trust = TrustStore([ca])
    edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us", ["10.9.0.1"]))

    extra = tuple(f"alt{i:04d}.example.net" for i in range(EXTRA_NAMES))
    if world_mode == "big-san":
        primary = ca.issue("www.example.com", extra)
        config = ServerConfig(
            chains=[ca.chain_for(primary)],
            serves=["www.example.com"],
        )
    else:
        primary = ca.issue("www.example.com", ())
        bulk = ca.issue("alt0000.example.net", extra)
        config = ServerConfig(
            chains=[ca.chain_for(primary)],
            serves=["www.example.com"],
            secondary_chains={"*": [ca.chain_for(bulk)]},
        )
    server = H2Server(network, edge, config)
    server.listen_all()
    tls = TlsClientConfig(
        sni="www.example.com", trust_store=trust, authorities=[ca],
        now=network.loop.now,
    )
    session = H2ClientSession(
        network, client_host, "10.0.0.1", tls,
        secondary_certs=(world_mode == "secondary"),
    )
    return network, ca, session


def run_mode(mode):
    network, ca, session = build(mode)
    first_response = []
    session.connect(
        on_ready=lambda: session.request("www.example.com", "/",
                                         first_response.append)
    )
    network.loop.run_until_idle()
    handshake = simulate_handshake(
        session.server_chain, HandshakeConfig(rtt_ms=30.0)
    )
    return {
        "tls_done_ms": session.connected_at,
        "first_byte_ms": first_response[0].finished_at,
        "primary_chain_bytes": sum(c.size_bytes
                                   for c in session.server_chain),
        "handshake_extra_flights": handshake.extra_flights,
        "covers_extra": session.certificate_covers(
            "alt0400.example.net"
        ),
    }


def test_secondary_certs_vs_big_san(benchmark):
    results = {mode: run_mode(mode) for mode in ("big-san", "secondary")}
    benchmark.pedantic(run_mode, args=("secondary",), rounds=1,
                       iterations=1)
    print_block(render_table(
        f"§6.5 -- one cert with {EXTRA_NAMES} extra SANs vs secondary "
        "CERTIFICATE frames",
        ["Mode", "TLS done (ms)", "First byte (ms)",
         "Handshake chain (B)", "Extra flights", "Covers extras"],
        [
            (mode,
             f"{r['tls_done_ms']:.1f}",
             f"{r['first_byte_ms']:.1f}",
             f"{r['primary_chain_bytes']:,}",
             r["handshake_extra_flights"],
             "yes" if r["covers_extra"] else "no")
            for mode, r in results.items()
        ],
    ))

    big, sec = results["big-san"], results["secondary"]
    # Both approaches confer the extra authority...
    assert big["covers_extra"] and sec["covers_extra"]
    # ...but the secondary-cert handshake is leaner and faster; the
    # first byte is no worse (the deferred chain shares the link, so
    # allow a small tolerance).
    assert sec["primary_chain_bytes"] < big["primary_chain_bytes"] / 4
    assert sec["tls_done_ms"] < big["tls_done_ms"]
    assert sec["first_byte_ms"] <= big["first_byte_ms"] + 5.0
    assert big["handshake_extra_flights"] > \
        sec["handshake_extra_flights"]
