"""Figure 6: experiment certificate issuance with byte-equal padding."""

from conftest import print_block

from repro.analysis import render_table
from repro.deployment.experiment import (
    DEFAULT_CONTROL_DOMAIN,
    DEFAULT_THIRD_PARTY,
    Group,
)


def test_figure6(benchmark, deployment):
    _, experiment = deployment
    deltas = benchmark(experiment.certificate_size_deltas)
    rows = []
    for group in Group:
        values = deltas[group]
        rows.append((
            group.value,
            len(values),
            f"{min(values)}..{max(values)}" if values else "-",
            (DEFAULT_THIRD_PARTY if group is Group.EXPERIMENT
             else DEFAULT_CONTROL_DOMAIN),
        ))
    print_block(render_table(
        "Figure 6 -- certificate reissuance "
        "(paper: both groups' SAN additions are 20 bytes)",
        ["Group", "Certificates", "Size delta (bytes)", "Added SAN"],
        rows,
    ))

    assert len(DEFAULT_THIRD_PARTY) == len(DEFAULT_CONTROL_DOMAIN)
    assert set(deltas[Group.EXPERIMENT]) == set(deltas[Group.CONTROL])
    for site in experiment.sample:
        expected = (
            DEFAULT_THIRD_PARTY if site.group is Group.EXPERIMENT
            else DEFAULT_CONTROL_DOMAIN
        )
        assert site.reissued_certificate.covers(expected)
