"""Figure 9: page-load-time predictions and deployment measurement."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_cdf
from repro.core import predict_plt

#: Paper model medians: ~10% (IP), ~27% (ORIGIN), ~1.5% (CDN-only);
#: measured deployment improvement ~1% ("no worse").
PAPER = {"ip": 0.10, "origin": 0.27, "cdn": 0.015}

CLOUDFLARE_ASN = 13335


def test_figure9_model(benchmark, archives):
    prediction = benchmark.pedantic(
        predict_plt, args=(archives,),
        kwargs={"cdn_asn": CLOUDFLARE_ASN}, rounds=1, iterations=1,
    )
    print_block(render_cdf(
        "Figure 9 (top) -- PLT under the models "
        f"(paper median improvements: IP {format_pct(PAPER['ip'])}, "
        f"ORIGIN {format_pct(PAPER['origin'])}, CDN-only "
        f"{format_pct(PAPER['cdn'])})",
        [
            ("measured", prediction.measured),
            ("ideal IP", prediction.ideal_ip),
            ("ideal ORIGIN", prediction.ideal_origin),
            ("CDN-only ORIGIN", prediction.cdn_origin),
        ],
    ))
    improvements = prediction.median_improvements()
    print("median improvements: "
          + ", ".join(f"{k}={format_pct(v)}"
                      for k, v in improvements.items()))

    # Shape: ORIGIN >= IP >= CDN-only >= 0, nothing gets slower.
    assert improvements["origin"] >= improvements["cdn_origin"] - 1e-9
    assert improvements["origin"] >= 0.0
    assert improvements["ip"] >= 0.0
    assert improvements["cdn_origin"] >= 0.0
    for before, after in zip(prediction.measured,
                             prediction.ideal_origin):
        assert after <= before + 1e-6


def test_figure9_measured(benchmark, deployment):
    """Figure 9 (bottom): the deployed experiment's PLTs vs control --
    the paper found ~1% improvement, i.e. 'no worse'."""
    from repro.deployment import ActiveMeasurement
    from repro.deployment.experiment import Group

    _, experiment = deployment
    experiment.enable_origin_frames()
    active = ActiveMeasurement(experiment, origin_frames=True, seed=41)
    result = benchmark.pedantic(active.run, rounds=1, iterations=1)
    experiment.disable_origin_frames()

    print_block(render_cdf(
        "Figure 9 (bottom) -- measured PLT at the deployment "
        "(paper: ~1% median improvement, 'no worse')",
        [
            ("experiment", result.page_load_times[Group.EXPERIMENT]),
            ("control", result.page_load_times[Group.CONTROL]),
        ],
    ))
    difference = result.plt_difference()
    print(f"experiment vs control median PLT difference: "
          f"{format_pct(difference)}")

    # 'No worse': the experiment group is not meaningfully slower.
    # (Groups contain different sites, so allow sampling spread.)
    assert difference > -0.5
