"""Ablation: DNS answer rotation vs IP-coalescing opportunities.

§2.3 notes DNS operators may return "any or all addresses from a set";
the ordering policy decides whether Chromium's connected-IP check and
Firefox's available-set transitivity ever fire.
"""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import render_table
from repro.browser import ChromiumPolicy, FirefoxPolicy
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world
from repro.dnssim import (
    FixedOrderPolicy,
    RandomRotationPolicy,
    RoundRobinPolicy,
    SingleAddressPolicy,
)

ANSWER_POLICIES = [
    ("single-address", lambda rng: SingleAddressPolicy()),
    ("fixed-order", lambda rng: FixedOrderPolicy()),
    ("round-robin", lambda rng: RoundRobinPolicy()),
    ("random-subset", lambda rng: RandomRotationPolicy(rng,
                                                       answer_size=1)),
]


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for name, factory in ANSWER_POLICIES:
        for browser_name, browser in (
            ("chromium", ChromiumPolicy()),
            ("firefox", FirefoxPolicy(origin_frames=False)),
        ):
            world = build_world(DatasetConfig(site_count=60, seed=9))
            world.dns_authority.answer_policy = factory(world.rng)
            result = Crawler(world, policy=browser,
                             speculative_rate=0.0).crawl()
            ok = result.successes
            coalesced = float(np.median([
                sum(1 for e in a.entries if e.coalesced) for a in ok
            ]))
            results[(name, browser_name)] = coalesced
    return results


def test_ablation_dns_rotation(benchmark, sweep):
    benchmark(lambda: dict(sweep))
    rows = [
        (answer, browser, count)
        for (answer, browser), count in sweep.items()
    ]
    print_block(render_table(
        "Ablation -- DNS answer policy vs median coalesced requests",
        ["Answer policy", "Browser", "med coalesced/page"],
        rows,
    ))

    # A random 1-address subset destroys the IP overlap Chromium
    # needs; stable answers preserve it.
    assert sweep[("random-subset", "chromium")] <= \
        sweep[("fixed-order", "chromium")]
    # Firefox's transitivity is at least as effective as Chromium's
    # connected-set matching under every answer policy.
    for name, _ in ANSWER_POLICIES:
        assert sweep[(name, "firefox")] >= sweep[(name, "chromium")] - 0.5
