"""§6.7: the ORIGIN frame vs a non-compliant middlebox."""

from conftest import print_block

from repro.browser import BrowserContext, BrowserEngine, FirefoxPolicy
from repro.deployment import BuggyMiddlebox


def load(world, site, policy=None):
    context = BrowserContext(
        network=world.network,
        client_host=world.client_host,
        resolver=world.make_resolver(),
        trust_store=world.trust_store,
        authorities=world.authorities,
        policy=policy or FirefoxPolicy(origin_frames=True),
        asdb=world.asdb,
    )
    return BrowserEngine(context).load_blocking(site.hosted.record.page)


def test_middlebox_incident(benchmark, deployment):
    world, experiment = deployment
    experiment.enable_origin_frames()
    site = experiment.sample[0]

    buggy = BuggyMiddlebox(world.network,
                           protected_clients={world.client_host.name})
    buggy.install()
    broken = load(world, site)
    buggy.uninstall()

    fixed = BuggyMiddlebox(world.network,
                           protected_clients={world.client_host.name})
    fixed.fix()
    fixed.install()
    repaired = benchmark.pedantic(
        load, args=(world, site), rounds=1, iterations=1
    )
    fixed.uninstall()
    experiment.disable_origin_frames()

    print_block(
        "Middlebox incident (paper §6.7) -- buggy agent: page "
        f"{'FAILED' if not broken.page.success else 'loaded'} "
        f"({buggy.stats.connections_torn_down} connections torn down "
        f"on {buggy.stats.unknown_frames_seen} unknown frames); "
        f"after vendor fix: page "
        f"{'loaded' if repaired.page.success else 'FAILED'} "
        f"({fixed.stats.unknown_frames_seen} unknown frames ignored)"
    )

    assert not broken.page.success
    assert buggy.stats.connections_torn_down > 0
    assert repaired.page.success
    assert fixed.stats.connections_torn_down == 0
