"""Ablation: TLS version vs handshake cost and page loads (§6.6).

Coalescing's connection-setup savings scale with the cost of the
handshakes it avoids: TLS 1.2 pays two round trips, TLS 1.3 one,
resumed TLS 1.3 none.
"""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import render_table
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world
from repro.tlspki import (
    CertificateAuthority,
    HandshakeConfig,
    TlsVersion,
    simulate_handshake,
)


def test_handshake_costs(benchmark):
    ca = CertificateAuthority("Bench CA")
    chain = ca.chain_for(ca.issue("www.example.com", ()))
    configs = {
        "TLS 1.2": HandshakeConfig(version=TlsVersion.TLS12, rtt_ms=30.0),
        "TLS 1.3": HandshakeConfig(version=TlsVersion.TLS13, rtt_ms=30.0),
        "TLS 1.3 resumed": HandshakeConfig(
            version=TlsVersion.TLS13, rtt_ms=30.0, resumed=True
        ),
    }
    benchmark(simulate_handshake, chain, configs["TLS 1.2"])
    results = {
        name: simulate_handshake(chain, config)
        for name, config in configs.items()
    }
    print_block(render_table(
        "Ablation -- handshake cost by TLS version (30ms RTT)",
        ["Version", "Duration (ms)", "RTTs", "Signature checks"],
        [
            (name, f"{r.duration_ms:.1f}", f"{r.rtts_used:.0f}",
             r.signature_checks)
            for name, r in results.items()
        ],
    ))
    assert results["TLS 1.2"].duration_ms > \
        results["TLS 1.3"].duration_ms > \
        results["TLS 1.3 resumed"].duration_ms


@pytest.fixture(scope="module")
def plt_by_tls():
    medians = {}
    for label, tls12_rate in (("all TLS 1.3", 0.0), ("all TLS 1.2", 1.0)):
        world = build_world(DatasetConfig(site_count=60, seed=4))
        crawler = Crawler(world, speculative_rate=0.0)
        crawler.context.tls12_rate = tls12_rate
        result = crawler.crawl()
        medians[label] = float(np.median(
            [a.page_load_time for a in result.successes]
        ))
    return medians


def test_tls_version_page_loads(benchmark, plt_by_tls):
    benchmark(lambda: dict(plt_by_tls))
    print_block(render_table(
        "Ablation -- fleet TLS version vs median PLT",
        ["Fleet", "Median PLT (ms)"],
        [(name, f"{plt:.0f}") for name, plt in plt_by_tls.items()],
    ))
    assert plt_by_tls["all TLS 1.2"] > plt_by_tls["all TLS 1.3"]
