"""Figure 7a: active measurement under IP-based coalescing (§5.2)."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_table
from repro.deployment import ActiveMeasurement
from repro.deployment.active import FIREFOX_91_UA
from repro.deployment.experiment import Group

#: Paper: control 9%/83% at 0/1 connections, max 7; experiment ~70%
#: zero, 28% one, max 4.
PAPER = {"control_zero": 0.09, "control_one": 0.83,
         "experiment_zero": 0.70}


@pytest.fixture(scope="module")
def measured(deployment):
    _, experiment = deployment
    experiment.deploy_ip_coalescing()
    active = ActiveMeasurement(
        experiment, origin_frames=False, user_agent=FIREFOX_91_UA,
        seed=77,
    )
    result = active.run()
    experiment.undo_ip_coalescing()
    return result


def test_figure7a(benchmark, measured):
    cdf_control = benchmark(measured.cdf, Group.CONTROL)
    cdf_experiment = measured.cdf(Group.EXPERIMENT)
    rows = []
    for count in range(8):
        rows.append((
            count,
            format_pct(measured.fraction_with(Group.EXPERIMENT, count)),
            format_pct(measured.fraction_with(Group.CONTROL, count)),
        ))
    print_block(render_table(
        "Figure 7a -- new TLS connections to the third party, IP "
        f"coalescing (paper: experiment {format_pct(PAPER['experiment_zero'])} "
        f"zero; control {format_pct(PAPER['control_zero'])} zero / "
        f"{format_pct(PAPER['control_one'])} one)",
        ["#New conns", "Experiment", "Control"],
        rows,
    ))

    assert measured.fraction_with(Group.EXPERIMENT, 0) >= 0.4
    assert measured.fraction_with(Group.CONTROL, 0) <= 0.3
    assert measured.max_connections(Group.CONTROL) <= 7
    assert cdf_control[-1][1] == pytest.approx(1.0)
    assert cdf_experiment[-1][1] == pytest.approx(1.0)
