"""How big do ORIGIN sets need to be?

§4.1: "the set of names that should appear in an ORIGIN Frame for a
website are those that could have been coalesced."  This bench derives
those sets from the crawl and reports their size distribution --
the operational cost of the paper's recommendation to providers.
"""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import render_cdf
from repro.core import origin_set_for_page


def test_origin_set_sizes(benchmark, successes):
    def derive():
        sizes = []
        frame_bytes = []
        for archive in successes:
            for hostnames in origin_set_for_page(archive).values():
                sizes.append(len(hostnames))
                frame_bytes.append(sum(
                    2 + len(f"https://{name}") for name in hostnames
                ))
        return sizes, frame_bytes

    sizes, frame_bytes = benchmark(derive)
    print_block(render_cdf(
        "ORIGIN sets the model recommends (per service, per page)",
        [("hostnames per origin set", sizes),
         ("ORIGIN frame payload bytes", frame_bytes)],
    ))
    print(f"median origin set: {np.median(sizes):.0f} hostnames, "
          f"{np.median(frame_bytes):.0f} frame bytes; largest: "
          f"{max(sizes)} hostnames")

    assert sizes, "no multi-hostname services found"
    # Origin sets are small: a handful of names, well under a packet.
    assert np.median(sizes) <= 10
    assert np.median(frame_bytes) < 1400
    # Every set has at least two names (singletons advertise nothing).
    assert min(sizes) >= 2
