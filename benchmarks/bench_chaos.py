#!/usr/bin/env python
"""Chaos-run benchmark: injector overhead + jobs determinism.

Crawls the same sharded world three ways -- plain, under an *empty*
fault schedule (the armed-but-idle injector), and under the demo
fault schedule with retries on -- and reports sites/sec for each, so
the cost of the chaos machinery has a trend line.  The empty-schedule
run must stay byte-identical to the plain crawl (archives and audit),
and the faulted run must be byte-identical at jobs=1 vs jobs=N; both
checks ARE hard failures here, same as bench_traffic's identity
check::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        --sites 40 --shards 2 --jobs 2 --output BENCH_chaos.json

``scripts/bench.sh`` runs this as an informational stage -- the chaos
runner rides the same crawl hot paths the crawl gate already
protects, so there is no second throughput gate.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import sys
import time
from pathlib import Path


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel run")
    parser.add_argument("--schedule", default="examples/faults_demo.toml")
    parser.add_argument("--output", default="BENCH_chaos.json")
    parser.add_argument("--skip-verify", action="store_true",
                        help="skip the byte-identity checks")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)

    from repro.audit.log import events_to_jsonl
    from repro.chaos import (
        DEFAULT_RETRY_POLICY,
        EMPTY_SCHEDULE,
        ChaosRunner,
        load_fault_schedule,
    )
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams, ParallelCrawler

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(policy="chromium", speculative_rate=0.10,
                         dns_latency_ms=48.0, seed=7, alpn="h2")
    schedule = load_fault_schedule(args.schedule)

    print(f"bench_chaos: {args.sites} sites, {args.shards} shards, "
          f"schedule={args.schedule}, "
          f"cpu_count={multiprocessing.cpu_count()}")

    def timed(label, run):
        started = time.perf_counter()
        out = run()
        elapsed = time.perf_counter() - started
        rate = args.sites / elapsed
        print(f"  {label}: {elapsed:.2f}s  ({rate:.2f} sites/sec)")
        return out, elapsed, rate

    plain_crawler = ParallelCrawler(config, params=params,
                                    shard_count=args.shards, jobs=1)
    (p_result, p_trace), plain_s, plain_rate = timed(
        "plain crawl        ",
        lambda: plain_crawler.crawl_traced(audit=True),
    )

    empty_runner = ChaosRunner(config, params=params,
                               schedule=EMPTY_SCHEDULE,
                               retry_policy=DEFAULT_RETRY_POLICY,
                               shard_count=args.shards, jobs=1)
    (e_result, e_trace, _), empty_s, empty_rate = timed(
        "empty schedule     ", empty_runner.run,
    )

    def chaos_run(jobs):
        runner = ChaosRunner(config, params=params, schedule=schedule,
                             retry_policy=DEFAULT_RETRY_POLICY,
                             shard_count=args.shards, jobs=jobs)
        return runner.run()

    (f_result, f_trace, report), fault_s, fault_rate = timed(
        "demo schedule      ", lambda: chaos_run(1),
    )
    parallel_informational = multiprocessing.cpu_count() < 2
    (j_result, j_trace, j_report), par_s, par_rate = timed(
        f"demo schedule j={args.jobs} ", lambda: chaos_run(args.jobs),
    )

    identical = None
    if not args.skip_verify:
        empty_identical = (
            [a.to_json() for a in p_result.archives]
            == [a.to_json() for a in e_result.archives]
            and events_to_jsonl(p_trace.audit)
            == events_to_jsonl(e_trace.audit)
        )
        jobs_identical = (
            report.to_jsonl() == j_report.to_jsonl()
            and events_to_jsonl(f_trace.audit)
            == events_to_jsonl(j_trace.audit)
        )
        identical = empty_identical and jobs_identical
        print(f"  empty schedule identical to plain: {empty_identical}")
        print(f"  report + audit identical across jobs: {jobs_identical}")
        if not identical:
            print("bench_chaos: FAIL -- determinism invariant broken",
                  file=sys.stderr)
            return 1

    print(f"  idle injector runs at {empty_rate / plain_rate:.2f}x plain "
          f"throughput; faulted run at {fault_rate / plain_rate:.2f}x "
          f"({report.connections_lost} connections lost, "
          f"{report.requests_retried} retries)")

    document = {
        "sites": args.sites,
        "seed": args.seed,
        "shards": args.shards,
        "jobs": args.jobs,
        "schedule": args.schedule,
        "cpu_count": multiprocessing.cpu_count(),
        "python": platform.python_version(),
        "identical": identical,
        "connections_lost": report.connections_lost,
        "requests_retried": report.requests_retried,
        "mean_blast_radius": round(report.mean_blast_radius, 3),
        "plain": {
            "seconds": round(plain_s, 3),
            "sites_per_sec": round(plain_rate, 3),
        },
        "empty_schedule": {
            "seconds": round(empty_s, 3),
            "sites_per_sec": round(empty_rate, 3),
            "overhead_vs_plain": round(plain_rate / empty_rate, 3)
            if empty_rate else None,
        },
        "faulted": {
            "seconds": round(fault_s, 3),
            "sites_per_sec": round(fault_rate, 3),
            "overhead_vs_plain": round(plain_rate / fault_rate, 3)
            if fault_rate else None,
        },
        "faulted_parallel": {
            "seconds": round(par_s, 3),
            "sites_per_sec": round(par_rate, 3),
            "informational": parallel_informational,
        },
        "speedup": round(fault_s / par_s, 3) if par_s else None,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2) + "\n",
                      encoding="utf-8")
    print(f"  wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
