"""Figure 8: longitudinal third-party TLS connection rates."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_series
from repro.deployment import LongitudinalStudy, PassivePipeline

#: Paper: ~50% fewer experiment-group connections during the two-week
#: deployment window; no difference before/after.
PAPER = {"reduction": 0.50}


@pytest.fixture(scope="module")
def rates(deployment):
    _, experiment = deployment
    pipeline = PassivePipeline(experiment, sampling_rate=1.0, seed=3)
    pipeline.attach()
    study = LongitudinalStudy(experiment, pipeline,
                              visits_per_site_per_day=1)
    result = study.run(total_days=8, deploy_on=2, deploy_off=6)
    pipeline.detach()
    return result


def test_figure8(benchmark, rates):
    during = benchmark(rates.reduction_during_deployment)
    outside = rates.reduction_outside_deployment()
    window = [
        "ORIGIN ON" if rates.in_window(day) else ""
        for day in rates.days
    ]
    print_block(render_series(
        "Figure 8 -- daily new TLS connections to the third party "
        f"(paper: ~{format_pct(PAPER['reduction'])} reduction during "
        "deployment)",
        "day",
        [
            ("experiment", [float(v) for v in rates.experiment]),
            ("control", [float(v) for v in rates.control]),
            ("window", window),
        ],
        rates.days,
    ))
    print(f"reduction during: {format_pct(during)}; outside: "
          f"{format_pct(outside)}")

    assert during >= 0.3
    assert during > outside
    assert abs(outside) < 0.35
