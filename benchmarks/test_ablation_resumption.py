"""Ablation: TLS session resumption vs coalescing for repeat visits.

§6.1 notes the interplay between caching, connection setup, and
coalescing for warm visits.  Resumption removes certificate bytes and
validation from repeat handshakes; coalescing removes the handshakes
themselves.  They compose.
"""

from conftest import print_block

import numpy as np
import pytest

from repro.h2 import H2ClientSession, H2Server, ServerConfig, \
    TlsClientConfig
from repro.netsim import EventLoop, Host, LatencyModel, LinkSpec, Network
from repro.tlspki import CertificateAuthority, TrustStore
from repro.analysis import render_table


def build():
    network = Network(
        loop=EventLoop(),
        latency=LatencyModel(default=LinkSpec(rtt_ms=30.0,
                                              bandwidth_bpms=100.0)),
    )
    ca = CertificateAuthority("Resume Bench CA",
                              rng=np.random.default_rng(15))
    trust = TrustStore([ca])
    edge = network.add_host(Host("edge", "us", ["10.0.0.1"]))
    client_host = network.add_host(Host("client", "us", ["10.9.0.1"]))
    cert = ca.issue(
        "www.example.com",
        ("www.example.com", "thirdparty.cdn.com"),
    )
    server = H2Server(network, edge, ServerConfig(
        chains=[ca.chain_for(cert)],
        serves=["www.example.com", "thirdparty.cdn.com"],
        origin_sets={"*": ("https://thirdparty.cdn.com",)},
    ))
    server.listen_all()
    cache = {}

    def session():
        tls = TlsClientConfig(
            sni="www.example.com", trust_store=trust, authorities=[ca],
            now=network.loop.now, session_cache=cache,
        )
        return H2ClientSession(network, client_host, "10.0.0.1", tls)

    return network, session


def connect_timed(network, client):
    start = network.loop.now()
    client.connect()
    network.loop.run_until_idle()
    return client.connected_at - start


def test_ablation_resumption(benchmark):
    network, session = build()
    cold = connect_timed(network, session())       # full handshake
    warm = connect_timed(network, session())       # ticket resumption
    # Coalesced "visit": the third party rides the existing session --
    # its handshake cost is zero by construction.
    coalesced_cost = 0.0

    def fresh_cold_connect():
        fresh_network, fresh_session = build()
        return connect_timed(fresh_network, fresh_session())

    benchmark.pedantic(fresh_cold_connect, rounds=1, iterations=1)

    print_block(render_table(
        "Ablation -- repeat-visit connection setup cost (30ms RTT, "
        "slow link)",
        ["Scenario", "Setup cost (ms)"],
        [
            ("cold: full TLS handshake", f"{cold:.1f}"),
            ("warm: ticket resumption", f"{warm:.1f}"),
            ("coalesced: rides existing connection",
             f"{coalesced_cost:.1f}"),
        ],
    ))
    print("resumption trims the handshake; coalescing removes it -- "
          "and only coalescing also removes the DNS query and SNI "
          "exposure (§6.2)")

    assert warm < cold
    assert coalesced_cost < warm
