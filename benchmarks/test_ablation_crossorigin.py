"""Ablation: crossorigin=anonymous / fetch() share vs coalescing.

§5.3 found coalescing "obstructed by use of the HTML crossorigin
attribute set to anonymous" and by fetch()/XHR.  Sweeping the share of
such requests shows how much of the deployment's headroom they eat.
"""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_table
from repro.dataset.world import build_world
from repro.deployment import ActiveMeasurement, DeploymentExperiment
from repro.deployment.experiment import (
    Group,
    deployment_world_config,
)

RATES = (0.0, 0.15, 0.5, 0.9)


@pytest.fixture(scope="module")
def sweep():
    zero_fraction = {}
    for rate in RATES:
        config = deployment_world_config(site_count=150, seed=2022)
        config.popular_anonymous_rate = rate
        config.anonymous_fetch_rate = max(
            rate, config.anonymous_fetch_rate
        )
        world = build_world(config)
        experiment = DeploymentExperiment(world)
        experiment.reissue_certificates()
        experiment.enable_origin_frames()
        active = ActiveMeasurement(experiment, origin_frames=True,
                                   churn_rate=0.0, seed=3)
        result = active.run()
        zero_fraction[rate] = result.fraction_with(Group.EXPERIMENT, 0)
    return zero_fraction


def test_ablation_crossorigin(benchmark, sweep):
    benchmark(lambda: dict(sweep))
    print_block(render_table(
        "Ablation -- anonymous-fetch share vs fully coalesced visits "
        "(experiment group)",
        ["Anonymous share", "Visits with 0 new connections"],
        [(format_pct(rate), format_pct(sweep[rate])) for rate in RATES],
    ))

    # More anonymous requests -> fewer fully coalesced visits.
    assert sweep[0.0] >= sweep[0.5] >= sweep[0.9]
    assert sweep[0.0] > 0.6
    assert sweep[0.9] < sweep[0.0]
