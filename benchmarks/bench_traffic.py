#!/usr/bin/env python
"""Traffic-simulation throughput benchmark: visits/sec at jobs=1 vs N.

Runs the population-scale traffic scenario serially and in parallel on
the same shard plan, verifies the two produce byte-identical aggregate
JSONL (the determinism guarantee the user-shard design makes), and
writes the measurements to a JSON file so future changes have a perf
trajectory to compare against::

    PYTHONPATH=src python benchmarks/bench_traffic.py \
        --users 200 --shards 4 --jobs 4 --output BENCH_traffic.json

``scripts/bench.sh`` runs this as an informational stage -- the
traffic runner rides the same simulation hot paths the crawl gate
already protects, so there is no second hard gate here.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import sys
import time
from pathlib import Path


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=200)
    parser.add_argument("--sites", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated scenario duration in seconds")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel run")
    parser.add_argument("--scenario", default="origin",
                        choices=("baseline", "origin", "ideal-san"))
    parser.add_argument("--output", default="BENCH_traffic.json")
    parser.add_argument("--skip-verify", action="store_true",
                        help="skip the jobs=1 == jobs=N aggregate check")
    return parser.parse_args(argv)


def timed_run(scenario, shard_count, jobs):
    from repro.traffic import run_scenario

    started = time.perf_counter()
    aggregate, trace = run_scenario(
        scenario, shard_count=shard_count, jobs=jobs, audit=True
    )
    elapsed = time.perf_counter() - started
    return aggregate, trace, elapsed


def main(argv=None) -> int:
    args = parse_args(argv)

    from repro.audit.log import events_to_jsonl
    from repro.traffic import ScenarioConfig, scenario_for_policy

    base = ScenarioConfig(
        users=args.users,
        site_count=args.sites,
        seed=args.seed,
        duration_ms=args.duration * 1000.0,
    )
    scenario = scenario_for_policy(base, args.scenario)

    print(f"bench_traffic: {args.users} users, {args.sites} sites, "
          f"{args.shards} shards, scenario={args.scenario}, "
          f"cpu_count={multiprocessing.cpu_count()}")

    serial, serial_trace, serial_s = timed_run(
        scenario, args.shards, jobs=1
    )
    visits = sum(tally.visits for tally in serial.cohorts.values())
    serial_rate = visits / serial_s
    print(f"  jobs=1: {serial_s:.2f}s  ({visits} visits, "
          f"{serial_rate:.2f} visits/sec)")

    parallel_informational = multiprocessing.cpu_count() < 2
    parallel, parallel_trace, parallel_s = timed_run(
        scenario, args.shards, jobs=args.jobs
    )
    parallel_rate = visits / parallel_s
    note = " (informational: single CPU)" if parallel_informational \
        else ""
    print(f"  jobs={args.jobs}: {parallel_s:.2f}s  "
          f"({parallel_rate:.2f} visits/sec){note}")

    identical = None
    if not args.skip_verify:
        identical = (
            serial.to_jsonl() == parallel.to_jsonl()
            and events_to_jsonl(serial_trace.audit)
            == events_to_jsonl(parallel_trace.audit)
        )
        print(f"  aggregate + audit identical across jobs: {identical}")
        if not identical:
            print("bench_traffic: FAIL -- parallel run diverged from "
                  "serial", file=sys.stderr)
            return 1

    speedup = serial_s / parallel_s
    print(f"  speedup: {speedup:.2f}x")

    totals = serial.totals
    document = {
        "users": args.users,
        "sites": args.sites,
        "seed": args.seed,
        "scenario": args.scenario,
        "duration_s": args.duration,
        "shards": args.shards,
        "jobs": args.jobs,
        "cpu_count": multiprocessing.cpu_count(),
        "python": platform.python_version(),
        "identical": identical,
        "visits": visits,
        "edge_connections": totals.connections,
        "handshakes": totals.handshakes,
        "serial": {
            "seconds": round(serial_s, 3),
            "visits_per_sec": round(serial_rate, 3),
        },
        "parallel": {
            "seconds": round(parallel_s, 3),
            "visits_per_sec": round(parallel_rate, 3),
            "informational": parallel_informational,
        },
        "speedup": round(speedup, 3),
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2) + "\n",
                      encoding="utf-8")
    print(f"  wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
