"""Table 9: per-provider most-valuable certificate additions."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_table
from repro.core import plan_certificates, provider_addition_table


@pytest.fixture(scope="module")
def planned(crawl):
    world, _ = crawl
    return world, plan_certificates(world)


def test_table9(benchmark, planned):
    world, plan = planned
    rows = benchmark(provider_addition_table, world, plan)
    flat = []
    for provider, site_count, share, host_rows in rows:
        for hostname, count, host_share in host_rows:
            flat.append((
                f"{provider} ({site_count} sites, {format_pct(share)})",
                hostname, count, format_pct(host_share),
            ))
    print_block(render_table(
        "Table 9 -- top same-provider hostnames to add per provider "
        "(paper: Cloudflare 24.74% of sites; cdnjs used by 16.21% of "
        "them)",
        ["Provider", "Hostname", "#Sites", "% of provider sites"],
        flat,
    ))

    providers = [provider for provider, _, _, _ in rows]
    assert "Cloudflare" in providers
    cloudflare = next(r for r in rows if r[0] == "Cloudflare")
    hostnames = [hostname for hostname, _, _ in cloudflare[3]]
    assert any("cdnjs" in hostname for hostname in hostnames)
