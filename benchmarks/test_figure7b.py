"""Figure 7b: active measurement under ORIGIN frames (§5.3)."""

from conftest import print_block

import pytest

from repro.analysis import format_pct, render_table
from repro.deployment import ActiveMeasurement
from repro.deployment.experiment import Group

#: Paper: control 6%/84% at 0/1; experiment 64% zero / 33% one; no
#: visit exceeds 4 new connections.
PAPER = {"control_zero": 0.06, "control_one": 0.84,
         "experiment_zero": 0.64, "experiment_one": 0.33, "max": 4}


@pytest.fixture(scope="module")
def measured(deployment):
    _, experiment = deployment
    experiment.enable_origin_frames()
    active = ActiveMeasurement(experiment, origin_frames=True, seed=53)
    result = active.run()
    experiment.disable_origin_frames()
    return result


def test_figure7b(benchmark, measured):
    benchmark(measured.cdf, Group.EXPERIMENT)
    rows = []
    for count in range(5):
        rows.append((
            count,
            format_pct(measured.fraction_with(Group.EXPERIMENT, count)),
            format_pct(measured.fraction_with(Group.CONTROL, count)),
        ))
    print_block(render_table(
        "Figure 7b -- new TLS connections to the third party, ORIGIN "
        f"(paper: experiment {format_pct(PAPER['experiment_zero'])} zero "
        f"/ {format_pct(PAPER['experiment_one'])} one; control "
        f"{format_pct(PAPER['control_zero'])} zero)",
        ["#New conns", "Experiment", "Control"],
        rows,
    ))

    assert measured.fraction_with(Group.EXPERIMENT, 0) >= 0.4
    assert measured.fraction_with(Group.CONTROL, 0) <= 0.3
    assert measured.max_connections(Group.EXPERIMENT) <= PAPER["max"]
    assert measured.fraction_with(Group.EXPERIMENT, 0) > \
        measured.fraction_with(Group.CONTROL, 0)
