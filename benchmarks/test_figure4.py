"""Figure 4: SAN-name counts, existing vs ideal certificates."""

from conftest import print_block

import pytest

from repro.analysis import render_cdf
from repro.core import plan_certificates

#: Paper: among changed SANs the median shifts 2 -> 3; p75 3 -> 7.
PAPER = {"median_before": 2, "median_after": 3}


@pytest.fixture(scope="module")
def plan(crawl):
    world, _ = crawl
    return plan_certificates(world)


def test_figure4(benchmark, plan):
    existing = benchmark(plan.existing_san_counts)
    ideal = plan.ideal_san_counts()
    print_block(render_cdf(
        "Figure 4 -- DNS names in certificate SANs "
        f"(paper: changed certs shift {PAPER['median_before']} -> "
        f"{PAPER['median_after']} at the median)",
        [("existing", existing), ("ideal", ideal)],
    ))
    before, after = plan.median_san_shift()
    print(f"median among changed certs: {before:.0f} -> {after:.0f}")

    assert after > before
    assert max(ideal) >= max(existing)
    # Zero-SAN sites exist at x=0 (paper: ~3% of sites).
    assert any(count == 0 for count in existing)
