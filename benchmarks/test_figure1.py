"""Figure 1: distribution of unique ASes needed per page."""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

#: Paper: 6.5% of pages use a single AS; the largest bin is 2 ASes
#: (14%); 50% of pages load within 6 ASes.
PAPER = {"single_as": 0.065, "median_ases": 6}


def test_figure1(benchmark, successes):
    data = benchmark(characterize.figure1, successes)
    rows = [
        (count, format_pct(fraction), format_pct(data.cdf_at(count)))
        for count, fraction in list(data.histogram.items())[:15]
    ]
    print_block(render_table(
        "Figure 1 -- unique ASes per page "
        f"(paper: {format_pct(PAPER['single_as'])} single-AS, "
        f"50% within {PAPER['median_ases']} ASes)",
        ["#ASes", "Fraction", "CDF"],
        rows,
    ))

    median_ases = float(np.median(data.as_counts))
    assert 3 <= median_ases <= 12
    # Most pages need only a handful of ASes (high colocation).
    assert data.cdf_at(10) > 0.6
    assert data.cdf[-1][1] == pytest.approx(1.0)
