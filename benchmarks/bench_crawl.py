#!/usr/bin/env python
"""Crawl throughput benchmark: sites/sec at jobs=1 vs jobs=N.

Runs the sharded crawl pipeline serially and in parallel on the same
configuration, verifies the two produce identical archives (the
determinism guarantee the shard design makes), and writes the
measurements to a JSON file so future changes have a perf trajectory
to compare against::

    PYTHONPATH=src python benchmarks/bench_crawl.py \
        --sites 400 --shards 4 --jobs 4 --output BENCH_crawl.json

``scripts/bench.sh`` wraps this with a regression gate against the
checked-in ``BENCH_crawl.json`` baseline.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import sys
import time
from pathlib import Path


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sites", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--policy", default="chromium")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel run")
    parser.add_argument("--output", default="BENCH_crawl.json")
    parser.add_argument("--warmup-sites", type=int, default=8,
                        help="untimed warm-up crawl before measuring "
                             "(amortizes one-time interpreter/numpy "
                             "costs that would bias small runs; 0 "
                             "disables)")
    parser.add_argument("--skip-verify", action="store_true",
                        help="skip the jobs=1 == jobs=N archive check")
    parser.add_argument("--skip-traced", action="store_true",
                        help="skip the telemetry-overhead measurement")
    parser.add_argument("--skip-audited", action="store_true",
                        help="skip the audit-overhead measurement")
    return parser.parse_args(argv)


def timed_crawl(config, params, shard_count, jobs):
    from repro.dataset.shard import ParallelCrawler

    crawler = ParallelCrawler(
        config, params=params, shard_count=shard_count, jobs=jobs
    )
    started = time.perf_counter()
    result = crawler.crawl()
    elapsed = time.perf_counter() - started
    return result, elapsed


def timed_crawl_traced(config, params, shard_count, jobs,
                       trace=True, audit=False):
    from repro.dataset.shard import ParallelCrawler

    crawler = ParallelCrawler(
        config, params=params, shard_count=shard_count, jobs=jobs
    )
    started = time.perf_counter()
    result, crawl_trace = crawler.crawl_traced(trace=trace, audit=audit)
    elapsed = time.perf_counter() - started
    return result, crawl_trace, elapsed


def main(argv=None) -> int:
    args = parse_args(argv)

    from repro.dataset.generator import DatasetConfig
    from repro.dataset.shard import CrawlParams

    config = DatasetConfig(site_count=args.sites, seed=args.seed)
    params = CrawlParams(policy=args.policy, speculative_rate=0.10)

    print(f"bench_crawl: {args.sites} sites, {args.shards} shards, "
          f"policy={args.policy}, cpu_count={multiprocessing.cpu_count()}")

    if args.warmup_sites > 0:
        # A different seed so the warm-up cannot share memoized site
        # plans with the measured runs; throughput must come from the
        # steady-state code paths, not a pre-populated cache.
        warmup_config = DatasetConfig(site_count=args.warmup_sites,
                                      seed=args.seed + 1)
        _, warmup_s = timed_crawl(warmup_config, params, 1, jobs=1)
        print(f"  warm-up: {args.warmup_sites} sites in {warmup_s:.2f}s "
              "(untimed)")

    serial, serial_s = timed_crawl(config, params, args.shards, jobs=1)
    serial_rate = args.sites / serial_s
    print(f"  jobs=1: {serial_s:.2f}s  ({serial_rate:.2f} sites/sec)")

    # On a single-CPU machine the parallel run still verifies the
    # jobs=1 == jobs=N determinism guarantee, but its throughput only
    # measures multiprocessing overhead -- record it as informational
    # so baseline comparisons know not to lean on it.
    parallel_informational = multiprocessing.cpu_count() < 2
    parallel, parallel_s = timed_crawl(
        config, params, args.shards, jobs=args.jobs
    )
    parallel_rate = args.sites / parallel_s
    note = " (informational: single CPU)" if parallel_informational \
        else ""
    print(f"  jobs={args.jobs}: {parallel_s:.2f}s  "
          f"({parallel_rate:.2f} sites/sec){note}")

    identical = None
    if not args.skip_verify:
        identical = serial.archives == parallel.archives
        print(f"  archives identical across jobs: {identical}")
        if not identical:
            print("bench_crawl: FAIL -- parallel crawl diverged from "
                  "serial", file=sys.stderr)
            return 1

    speedup = serial_s / parallel_s
    print(f"  speedup: {speedup:.2f}x")

    traced_doc = None
    if not args.skip_traced:
        traced, trace, traced_s = timed_crawl_traced(
            config, params, args.shards, jobs=1
        )
        traced_rate = args.sites / traced_s
        overhead = traced_s / serial_s
        print(f"  jobs=1 traced: {traced_s:.2f}s  "
              f"({traced_rate:.2f} sites/sec, {len(trace.spans)} spans, "
              f"{overhead:.2f}x untraced)")
        if not args.skip_verify:
            traced_identical = traced.archives == serial.archives
            print(f"  traced archives identical to untraced: "
                  f"{traced_identical}")
            if not traced_identical:
                print("bench_crawl: FAIL -- tracing changed the "
                      "simulation's archives", file=sys.stderr)
                return 1
        traced_doc = {
            "seconds": round(traced_s, 3),
            "sites_per_sec": round(traced_rate, 3),
            "spans": len(trace.spans),
            "overhead_vs_serial": round(overhead, 3),
        }

    audited_doc = None
    if not args.skip_audited:
        audited, audit_trace, audited_s = timed_crawl_traced(
            config, params, args.shards, jobs=1,
            trace=False, audit=True,
        )
        audited_rate = args.sites / audited_s
        audit_overhead = audited_s / serial_s
        print(f"  jobs=1 audited: {audited_s:.2f}s  "
              f"({audited_rate:.2f} sites/sec, "
              f"{len(audit_trace.audit)} events, "
              f"{audit_overhead:.2f}x unaudited)")
        if not args.skip_verify:
            audited_identical = audited.archives == serial.archives
            print(f"  audited archives identical to unaudited: "
                  f"{audited_identical}")
            if not audited_identical:
                print("bench_crawl: FAIL -- auditing changed the "
                      "simulation's archives", file=sys.stderr)
                return 1
        audited_doc = {
            "seconds": round(audited_s, 3),
            "sites_per_sec": round(audited_rate, 3),
            "events": len(audit_trace.audit),
            "overhead_vs_serial": round(audit_overhead, 3),
        }

    document = {
        "sites": args.sites,
        "seed": args.seed,
        "policy": args.policy,
        "shards": args.shards,
        "jobs": args.jobs,
        "cpu_count": multiprocessing.cpu_count(),
        "python": platform.python_version(),
        "archives_identical": identical,
        "serial": {
            "seconds": round(serial_s, 3),
            "sites_per_sec": round(serial_rate, 3),
        },
        "parallel": {
            "seconds": round(parallel_s, 3),
            "sites_per_sec": round(parallel_rate, 3),
            "informational": parallel_informational,
        },
        "speedup": round(speedup, 3),
        "traced": traced_doc,
        "audited": audited_doc,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2) + "\n",
                      encoding="utf-8")
    print(f"  wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
