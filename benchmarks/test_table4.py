"""Table 4: top certificate issuers among validated handshakes."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

#: Paper: 16.24% of requests triggered new TLS validations; the top-5
#: distinct issuers cover 59.25% of them.
PAPER_VALIDATION_SHARE = 0.1624


def test_table4(benchmark, successes):
    rows, validations, total = benchmark(
        characterize.table4, successes
    )
    table = render_table(
        "Table 4 -- top certificate issuers "
        f"(paper: validations = {format_pct(PAPER_VALIDATION_SHARE)} "
        "of requests)",
        ["Issuer", "#Validations", "%"],
        [
            (issuer, count, format_pct(share))
            for issuer, count, share in rows
        ],
    )
    print_block(table)
    print(f"validations: {validations} "
          f"({format_pct(validations / total)} of {total} requests)")

    assert rows
    top5 = sum(share for _, _, share in rows[:5])
    assert top5 > 0.4  # heavy issuer concentration (paper: 59.25%)
    assert 0.05 < validations / total < 0.5
