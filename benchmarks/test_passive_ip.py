"""§5.2 passive measurement: TLS connection reduction under IP
coalescing (paper: 56%)."""

from conftest import print_block

import pytest

from repro.analysis import format_pct
from repro.deployment import ActiveMeasurement, PassivePipeline
from repro.deployment.active import FIREFOX_91_UA
from repro.deployment.experiment import Group

PAPER_REDUCTION = 0.56


@pytest.fixture(scope="module")
def pipeline(deployment):
    _, experiment = deployment
    experiment.deploy_ip_coalescing()
    pipe = PassivePipeline(experiment, sampling_rate=1.0, seed=11)
    pipe.attach()
    # Drive traffic with the v91 Firefox model (no ORIGIN support).
    active = ActiveMeasurement(
        experiment, origin_frames=False, user_agent=FIREFOX_91_UA,
        seed=19, churn_rate=0.0,
    )
    active.run()
    pipe.detach()
    experiment.undo_ip_coalescing()
    return pipe


def test_passive_ip_reduction(benchmark, pipeline):
    reduction = benchmark(pipeline.tls_connection_reduction)
    experiment_direct = pipeline.direct_connection_count(Group.EXPERIMENT)
    control_direct = pipeline.direct_connection_count(Group.CONTROL)
    print_block(
        "Passive (IP coalescing) -- new third-party TLS connections: "
        f"experiment {experiment_direct}, control {control_direct}; "
        f"reduction {format_pct(reduction)} "
        f"(paper: {format_pct(PAPER_REDUCTION)})"
    )
    assert reduction >= 0.3
    assert pipeline.coalesced_connection_count(Group.EXPERIMENT) > 0
    assert pipeline.coalesced_connection_count(Group.CONTROL) == 0
