#!/usr/bin/env python
"""Hot-path microbenchmarks: HPACK, framing, event loop, world build.

Each benchmark exercises one layer the crawl pipeline leans on,
reporting operations per second over the best of ``--repeat`` timed
passes (best-of defends against scheduler noise; the work itself is
deterministic).  Results go to a JSON file so the regression gate in
``scripts/bench.sh`` has a trajectory to compare against::

    PYTHONPATH=src python benchmarks/bench_micro.py \
        --output BENCH_micro.json

The numbers are machine-dependent; the gate compares ratios, not
absolute rates.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed passes per benchmark; best wins "
                             "(default 3)")
    parser.add_argument("--output", default="BENCH_micro.json")
    return parser.parse_args(argv)


def best_of(repeat, func):
    """Run ``func`` ``repeat`` times; return its fastest (ops, secs)."""
    best = None
    for _ in range(repeat):
        ops, seconds = func()
        if best is None or seconds / ops < best[1] / best[0]:
            best = (ops, seconds)
    return best


#: A realistic request block: pseudo-headers plus the stable browser
#: headers the crawler sends, with a varying :path.
def _request_headers(path):
    return [
        (":method", "GET"),
        (":scheme", "https"),
        (":authority", "www.example.org"),
        (":path", path),
        ("user-agent", "repro-crawler/1.0"),
        ("accept", "*/*"),
    ]


def bench_hpack_encode(blocks=2000):
    from repro.h2.hpack import HpackEncoder

    encoder = HpackEncoder()
    headers = [_request_headers(f"/asset/{i % 97}.js")
               for i in range(blocks)]
    started = time.perf_counter()
    for block in headers:
        encoder.encode(block)
    return blocks, time.perf_counter() - started


def bench_hpack_decode(blocks=2000):
    from repro.h2.hpack import HpackDecoder, HpackEncoder

    encoder = HpackEncoder()
    encoded = [encoder.encode(_request_headers(f"/asset/{i % 97}.js"))
               for i in range(blocks)]
    decoder = HpackDecoder()
    started = time.perf_counter()
    for block in encoded:
        decoder.decode(block)
    return blocks, time.perf_counter() - started


def bench_frame_roundtrip(frames=2000):
    from repro.h2 import frames as fr

    specs = []
    for i in range(frames):
        stream_id = 1 + 2 * (i % 50)
        specs.append(fr.HeadersFrame(
            stream_id=stream_id, flags=fr.FLAG_END_HEADERS,
            header_block=b"\x82\x86\x84" * 10,
        ))
        specs.append(fr.DataFrame(
            stream_id=stream_id, flags=fr.FLAG_END_STREAM,
            data=b"x" * 512,
        ))
        specs.append(fr.WindowUpdateFrame(stream_id=0, increment=512))
    started = time.perf_counter()
    buffer = bytearray()
    for frame in specs:
        frame.serialize_into(buffer)
    parsed = fr.consume_frames(buffer)
    elapsed = time.perf_counter() - started
    if len(parsed) != len(specs) or buffer:
        raise AssertionError("frame round-trip lost frames")
    return len(specs), elapsed


def bench_event_dispatch(events=20000):
    from repro.netsim.events import EventLoop

    loop = EventLoop()

    def noop():
        pass

    started = time.perf_counter()
    for i in range(events):
        loop.schedule(float(i % 64), noop)
    executed = loop.run_until_idle()
    elapsed = time.perf_counter() - started
    if executed != events:
        raise AssertionError("event loop dropped events")
    return events, elapsed


def bench_world_build(sites=40):
    from repro.dataset.generator import DatasetConfig
    from repro.dataset.world import build_world

    config = DatasetConfig(site_count=sites, seed=2022)
    started = time.perf_counter()
    build_world(config)
    return sites, time.perf_counter() - started


BENCHMARKS = (
    ("hpack_encode", bench_hpack_encode, "header blocks"),
    ("hpack_decode", bench_hpack_decode, "header blocks"),
    ("frame_roundtrip", bench_frame_roundtrip, "frames"),
    ("event_dispatch", bench_event_dispatch, "events"),
    ("world_build", bench_world_build, "sites"),
)


def main(argv=None) -> int:
    args = parse_args(argv)
    print(f"bench_micro: best of {args.repeat} passes per benchmark")
    results = {}
    for name, func, unit in BENCHMARKS:
        ops, seconds = best_of(args.repeat, func)
        rate = ops / seconds if seconds > 0 else float("inf")
        results[name] = {
            "ops": ops,
            "seconds": round(seconds, 6),
            "ops_per_sec": round(rate, 1),
            "unit": unit,
        }
        print(f"  {name}: {ops} {unit} in {seconds:.4f}s "
              f"({rate:,.0f} {unit}/sec)")
    document = {
        "python": platform.python_version(),
        "repeat": args.repeat,
        "results": results,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=2) + "\n",
                      encoding="utf-8")
    print(f"  wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
