"""Table 1: crawl summary per popularity bucket."""

from conftest import print_block

from repro.analysis import render_table
from repro.dataset import characterize

PAPER_TOTAL = {
    "success": 315_796, "requests": 81, "plt": 5746.0,
    "dns": 14, "tls": 16,
}


def test_table1(benchmark, archives):
    rows = benchmark(characterize.table1, archives)
    table = render_table(
        "Table 1 -- crawl summary by rank bucket (paper total row: "
        f"#reqs {PAPER_TOTAL['requests']}, PLT {PAPER_TOTAL['plt']}ms, "
        f"#DNS {PAPER_TOTAL['dns']}, #TLS {PAPER_TOTAL['tls']})",
        ["Rank", "Attempted", "Success", "#Reqs", "PLT (ms)", "#DNS",
         "#TLS"],
        [
            (row.bucket_label, row.attempted, row.success,
             f"{row.median_requests:.0f}", f"{row.median_plt_ms:.0f}",
             f"{row.median_dns:.0f}", f"{row.median_tls:.0f}")
            for row in rows
        ],
    )
    print_block(table)

    total = rows[-1]
    # Shape: success rate ~63.5%, medians in the paper's ballpark.
    assert 0.5 <= total.success / total.attempted <= 0.8
    assert 50 <= total.median_requests <= 130
    assert 8 <= total.median_dns <= 22
    assert total.median_tls >= total.median_dns
