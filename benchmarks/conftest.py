"""Shared state for the benchmark harness.

Heavy simulations (the crawl, the deployment) run once per session;
each bench then times the analysis that regenerates its table or
figure and prints paper-vs-measured rows.

Scale knobs come from environment variables so the harness can be run
bigger on beefier machines:

* ``REPRO_BENCH_SITES``   -- crawl size (default 400)
* ``REPRO_BENCH_DEPLOY``  -- deployment world size (default 300)
"""

import os

import pytest

from repro.browser import ChromiumPolicy
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world
from repro.deployment import DeploymentExperiment
from repro.deployment.experiment import deployment_world_config

BENCH_SITES = int(os.environ.get("REPRO_BENCH_SITES", "400"))
DEPLOY_SITES = int(os.environ.get("REPRO_BENCH_DEPLOY", "300"))


@pytest.fixture(scope="session")
def crawl():
    """The characterization crawl: (world, CrawlResult)."""
    config = DatasetConfig(site_count=BENCH_SITES, seed=2022)
    world = build_world(config)
    crawler = Crawler(world, policy=ChromiumPolicy(),
                      speculative_rate=0.10)
    return world, crawler.crawl()


@pytest.fixture(scope="session")
def archives(crawl):
    _, result = crawl
    return result.archives


@pytest.fixture(scope="session")
def successes(crawl):
    _, result = crawl
    return result.successes


@pytest.fixture(scope="session")
def deployment():
    """A deployment world with reissued certificates."""
    world = build_world(deployment_world_config(site_count=DEPLOY_SITES))
    experiment = DeploymentExperiment(world)
    experiment.reissue_certificates()
    return world, experiment


def print_block(text):
    print()
    print(text)
