"""Table 2: top-10 destination ASes by request share."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

#: The paper's top-10 collectively serve 63.68% of requests; the top-3
#: providers ~50%.
PAPER_TOP10_SHARE = 0.6368


def test_table2(benchmark, successes):
    rows = benchmark(characterize.table2, successes)
    table = render_table(
        "Table 2 -- top destination ASes "
        f"(paper: top-10 = {format_pct(PAPER_TOP10_SHARE)})",
        ["Rank", "ASN", "Org", "#Req", "%"],
        [
            (i + 1, asn, org, count, format_pct(share))
            for i, (asn, org, count, share) in enumerate(rows)
        ],
    )
    print_block(table)

    top10_share = sum(share for _, _, _, share in rows)
    orgs = [org for _, org, _, _ in rows]
    assert "Google" in orgs[:3]        # paper rank 1
    assert "Cloudflare" in orgs[:4]    # paper rank 2
    assert top10_share > 0.35          # heavy concentration holds
    total_ases = characterize.unique_as_count(successes)
    assert total_ases > 20
