"""Table 8: SAN-size distribution, measured vs ideal."""

from conftest import print_block

import pytest

from repro.analysis import render_table
from repro.core import plan_certificates, san_distribution_table


@pytest.fixture(scope="module")
def plan(crawl):
    world, _ = crawl
    return plan_certificates(world)


def test_table8(benchmark, plan):
    rows = benchmark(san_distribution_table, plan)
    print_block(render_table(
        "Table 8 -- SAN-size values ranked by certificate count "
        "(paper: measured rank-1 value 2; ideal rank-1 value 2 with "
        "-26.86% count)",
        ["Rank", "Measured #SAN", "Count", "Ideal #SAN", "Count",
         "Pct change", "Rank move"],
        [
            (rank, m_value, m_count, i_value, i_count,
             f"{pct:+.1f}%" if pct != float("inf") else "new",
             f"{change:+d}" if change else "=")
            for rank, m_value, m_count, i_value, i_count, pct, change
            in rows
        ],
    ))

    # Paper: the most common measured SAN size is 2 names (3 is the
    # runner-up; small samples can swap them).
    assert rows[0][1] in (2, 3)
    # Counts are ranked descending in both columns.
    measured = [row[2] for row in rows]
    ideal = [row[4] for row in rows]
    assert measured == sorted(measured, reverse=True)
    assert ideal == sorted(ideal, reverse=True)
