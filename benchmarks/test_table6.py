"""Table 6: top content types within the top-3 ASes."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize


def test_table6(benchmark, successes):
    table_data = benchmark(characterize.table6, successes)
    rows = []
    for (asn, org), type_rows in table_data.items():
        for content_type, count, share in type_rows:
            rows.append((f"AS {asn} ({org})", content_type, count,
                         format_pct(share)))
    print_block(render_table(
        "Table 6 -- top content types per top-3 AS (paper: javascript "
        "leads for Google/Cloudflare/Amazon)",
        ["AS", "Content type", "#Req", "%"],
        rows,
    ))

    assert len(table_data) == 3
    for (asn, org), type_rows in table_data.items():
        leading_type = type_rows[0][0]
        if org in ("Cloudflare", "Amazon 02"):
            # Table 6: application/javascript leads for both.
            assert "javascript" in leading_type
