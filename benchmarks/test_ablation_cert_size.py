"""Ablation: SAN growth vs handshake bytes and CT-log load.

§6.5: oversized certificates spill past the 16KB TLS record and the
initial congestion window, adding round trips.  §6.4: the one-time
reissuance burst is small against global issuance (257,034 certs/hour).
"""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.tlspki import (
    CertificateAuthority,
    CtLog,
    HandshakeConfig,
    IssuancePolicy,
    TLS_RECORD_SIZE,
    simulate_handshake,
)

SAN_SIZES = (2, 10, 100, 1000, 5000)

#: Paper §6.4: global issuance rate per hour.
GLOBAL_HOURLY_ISSUANCE = 257_034


def test_certificate_size_spill(benchmark):
    ca = CertificateAuthority(
        "Big CA", policy=IssuancePolicy(max_san_names=10_000)
    )
    rows = []
    results = {}
    for count in SAN_SIZES:
        names = tuple(
            f"host-{i:05d}.example.com" for i in range(count - 1)
        )
        leaf = ca.issue(f"site-{count}.example.com", names)
        chain = ca.chain_for(leaf)
        result = simulate_handshake(
            chain, HandshakeConfig(rtt_ms=30.0)
        )
        results[count] = result
        rows.append((
            count, f"{result.chain_bytes:,}", result.records_needed,
            result.extra_flights, f"{result.duration_ms:.1f}",
        ))
    benchmark(
        simulate_handshake,
        ca.chain_for(ca.issue("bench.example.com", ())),
        HandshakeConfig(rtt_ms=30.0),
    )
    print_block(render_table(
        "Ablation -- SAN count vs handshake (paper §6.5: certs beyond "
        f"the {TLS_RECORD_SIZE // 1024}KB record cost extra RTTs)",
        ["#SAN", "Chain bytes", "TLS records", "Extra flights",
         "Handshake (ms)"],
        rows,
    ))

    assert results[2].extra_flights == 0
    assert results[5000].records_needed > 1
    assert results[5000].extra_flights > results[100].extra_flights
    assert results[5000].duration_ms > results[2].duration_ms + 30.0


def test_ct_log_burst(benchmark, deployment):
    """§6.4: reissuing the whole sample is a blip vs global issuance."""
    _, experiment = deployment

    def burst_log():
        log = CtLog("bench-log")
        for site in experiment.sample:
            log.append(site.reissued_certificate, now=0.0)
        return log

    log = benchmark(burst_log)
    burst = log.appends_in_window(0.0, 3600_000.0)
    share = burst / GLOBAL_HOURLY_ISSUANCE
    print_block(
        f"CT-log burst: {burst} reissued certificates logged in one "
        f"hour = {format_pct(share, 4)} of the global hourly issuance "
        f"rate ({GLOBAL_HOURLY_ISSUANCE:,}/h)"
    )
    # Every logged certificate is provable.
    proof = log.inclusion_proof(0)
    assert log.verify_inclusion(
        experiment.sample[0].reissued_certificate, proof
    )
    assert share < 0.05
