"""Figure 2: the waterfall reconstruction example."""

from conftest import print_block

from repro.analysis import render_table
from repro.core import by_asn, reconstruct
from repro.web.har import HarArchive, HarEntry, HarPage, HarTimings


def figure2_archive():
    """The paper's worked example: 6 requests, 4 coalescable."""

    def entry(hostname, path, start, asn, ip, dns, connect, ssl,
              initiator="/"):
        return HarEntry(
            url=f"https://{hostname}{path}", hostname=hostname, path=path,
            started_at=start,
            timings=HarTimings(dns=dns, connect=connect, ssl=ssl,
                               wait=40.0, receive=30.0),
            server_ip=ip, asn=asn, as_org=f"AS{asn}",
            initiator_path=initiator,
        )

    entries = [
        entry("www.example.com", "/", 0.0, 10, "10.0.0.1",
              25.0, 30.0, 30.0, initiator=""),
        entry("static.example.com", "/js/jquery.js", 160.0, 10,
              "10.0.0.2", 22.0, 30.0, 30.0),
        entry("static.example.com", "/css/style.css", 162.0, 10,
              "10.0.0.2", 20.0, 30.0, 30.0),
        entry("fonts.cdnhost.com", "/fonts/arial.woff", 330.0, 10,
              "10.0.0.3", 24.0, 30.0, 30.0,
              initiator="/css/style.css"),
        entry("assets.cdnhost.com", "/js/bootstrap.js", 165.0, 10,
              "10.0.0.4", 26.0, 30.0, 30.0),
        entry("analytics.tracker.com", "/script.js", 170.0, 99,
              "10.9.9.9", 45.0, 40.0, 40.0),
    ]
    on_load = max(e.started_at + e.timings.total() for e in entries)
    return HarArchive(
        page=HarPage(url=entries[0].url, hostname=entries[0].hostname,
                     on_load=on_load, on_content_load=on_load),
        entries=entries,
    )


def test_figure2(benchmark):
    archive = figure2_archive()
    result = benchmark(reconstruct, archive, by_asn)
    rows = []
    rebuilt = {e.url: e for e in result.reconstructed.entries}
    for original in archive.entries_by_start():
        new = rebuilt[original.url]
        rows.append((
            original.hostname,
            f"{original.started_at:.0f}->{new.started_at:.0f}",
            f"{original.finished_at:.0f}->{new.finished_at:.0f}",
            "yes" if new.coalesced else "no",
        ))
    print_block(render_table(
        "Figure 2 -- waterfall reconstruction (paper: requests 2-5 "
        "coalesce; the tracker on another CDN cannot)",
        ["Request", "Start (ms)", "Finish (ms)", "Coalesced"],
        rows,
    ))
    print(f"time saved: {result.time_saved_ms:.0f}ms "
          f"({result.plt_improvement * 100:.1f}% of PLT)")

    assert len(result.coalesced_urls) == 4
    assert not any("tracker" in url for url in result.coalesced_urls)
    assert result.time_saved_ms > 0
