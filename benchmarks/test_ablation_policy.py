"""Ablation: how much does each browser policy coalesce?

Separates the §2.3 behaviours on identical pages: no coalescing at
all, Chromium's connected-set IP matching, Firefox's available-set
transitivity, and the DNS-free ideal ORIGIN client (§6.8).
"""

from conftest import print_block

import numpy as np
import pytest

from repro.analysis import render_table
from repro.browser import (
    ChromiumPolicy,
    FirefoxPolicy,
    IdealOriginPolicy,
    NoCoalescingPolicy,
)
from repro.dataset.crawler import Crawler
from repro.dataset.generator import DatasetConfig
from repro.dataset.world import build_world

POLICIES = [
    NoCoalescingPolicy(),
    ChromiumPolicy(),
    FirefoxPolicy(origin_frames=False),
    FirefoxPolicy(origin_frames=True),
    IdealOriginPolicy(),
]


@pytest.fixture(scope="module")
def per_policy_medians():
    medians = {}
    for policy in POLICIES:
        # Fresh world per policy: crawls mutate simulated time.
        world = build_world(DatasetConfig(site_count=80, seed=5))
        # Let the CDNs advertise model-derived origin sets so the
        # ORIGIN-aware policies have something to work with.
        for server in world.provider_servers.values():
            server.config.send_origin_frames = True
            hostnames = sorted(server.config._serves_exact
                               or set(server.config.serves))
            server.config.origin_sets["*"] = tuple(
                f"https://{name}" for name in hostnames[:50]
            )
        result = Crawler(world, policy=policy,
                         speculative_rate=0.0).crawl()
        ok = result.successes
        medians[policy.name] = {
            "tls": float(np.median([a.tls_connection_count()
                                    for a in ok])),
            "dns": float(np.median([a.dns_query_count() for a in ok])),
            "coalesced": float(np.median([
                sum(1 for e in a.entries if e.coalesced) for a in ok
            ])),
        }
    return medians


def test_ablation_policy(benchmark, per_policy_medians):
    benchmark(lambda: dict(per_policy_medians))
    rows = [
        (name, stats["dns"], stats["tls"], stats["coalesced"])
        for name, stats in per_policy_medians.items()
    ]
    print_block(render_table(
        "Ablation -- browser policy vs per-page medians",
        ["Policy", "med DNS", "med TLS", "med coalesced"],
        rows,
    ))

    stats = per_policy_medians
    # More capable policies never open more connections.
    assert stats["chromium"]["tls"] <= stats["none"]["tls"]
    assert stats["firefox"]["tls"] <= stats["chromium"]["tls"] + 0.5
    assert stats["firefox+origin"]["tls"] <= stats["firefox"]["tls"]
    assert stats["ideal-origin"]["tls"] <= stats["firefox+origin"]["tls"]
    # The ideal client also eliminates DNS queries (§6.8).
    assert stats["ideal-origin"]["dns"] <= stats["firefox+origin"]["dns"]
    # ORIGIN support strictly increases coalescing.
    assert stats["firefox+origin"]["coalesced"] >= \
        stats["firefox"]["coalesced"]
