"""The paper's §7 headline numbers."""

from conftest import print_block

import pytest

from repro.analysis import format_pct
from repro.core import headline_reductions, plan_certificates

#: "adding no more than 10 DNS names to 37.59% of the certificates will
#: reduce certificate validations by 68.75%, while reducing the number
#: of render blocking DNS queries by 64.28%."
PAPER = {"changed": 0.3759, "validation_reduction": 0.6875,
         "dns_reduction": 0.6428}


def test_headline(benchmark, crawl):
    world, result = crawl
    headline = benchmark.pedantic(
        headline_reductions, args=(result.archives,),
        rounds=1, iterations=1,
    )
    plan = plan_certificates(world)
    changed = 1.0 - plan.unchanged_fraction
    at_most_10 = plan.fraction_with_changes_at_most(10)
    print_block(
        "Headline (paper §7): "
        f"certificates changed {format_pct(changed)} "
        f"(paper {format_pct(PAPER['changed'])}); "
        f"<=10 additions covers {format_pct(at_most_10)}; "
        "validation reduction "
        f"{format_pct(headline['validation_reduction'])} "
        f"(paper {format_pct(PAPER['validation_reduction'])}); "
        f"DNS reduction {format_pct(headline['dns_reduction'])} "
        f"(paper {format_pct(PAPER['dns_reduction'])})"
    )

    assert 0.15 <= changed <= 0.60
    assert headline["validation_reduction"] >= 0.45
    assert headline["dns_reduction"] >= 0.25
    assert at_most_10 >= 0.85
