"""§5.3 passive measurement: TLS connection reduction under ORIGIN
frames, Firefox-filtered (paper: ~50%)."""

from conftest import print_block

import pytest

from repro.analysis import format_pct
from repro.deployment import ActiveMeasurement, PassivePipeline
from repro.deployment.experiment import Group

PAPER_REDUCTION = 0.50


@pytest.fixture(scope="module")
def pipeline(deployment):
    _, experiment = deployment
    experiment.enable_origin_frames()
    pipe = PassivePipeline(
        experiment, sampling_rate=1.0, seed=13, firefox_only=True,
    )
    pipe.attach()
    active = ActiveMeasurement(experiment, origin_frames=True,
                               seed=23, churn_rate=0.0)
    active.run()
    pipe.detach()
    experiment.disable_origin_frames()
    return pipe


def test_passive_origin_reduction(benchmark, pipeline):
    reduction = benchmark(pipeline.tls_connection_reduction)
    print_block(
        "Passive (ORIGIN, Firefox-filtered) -- reduction "
        f"{format_pct(reduction)} (paper: ~{format_pct(PAPER_REDUCTION)})"
    )
    # Coalescing is visible through the SNI != Host flag bit.
    flagged = [r for r in pipeline.third_party_records()
               if r.sni_host_mismatch]
    assert flagged
    assert all("firefox" in r.user_agent.lower()
               for r in pipeline.records)
    assert reduction >= 0.3
