"""Table 5: requests by content type."""

from conftest import print_block

from repro.analysis import format_pct, render_table
from repro.dataset import characterize

PAPER_TOP = [
    ("application/javascript", 0.1426),
    ("image/jpeg", 0.1302),
    ("image/png", 0.1067),
    ("text/html", 0.1032),
]


def test_table5(benchmark, successes):
    rows = benchmark(characterize.table5, successes)
    table = render_table(
        "Table 5 -- requests by content type (paper top-4: "
        + ", ".join(f"{n} {format_pct(s)}" for n, s in PAPER_TOP) + ")",
        ["Content type", "#Req", "%"],
        [(name, count, format_pct(share)) for name, count, share in rows],
    )
    print_block(table)

    top_types = [name for name, _, _ in rows[:6]]
    assert "application/javascript" in top_types
    assert "image/jpeg" in top_types
    assert "text/html" in top_types
    shares = [share for _, _, share in rows]
    assert shares == sorted(shares, reverse=True)
