"""Figure 3: measured vs ideal DNS/TLS count distributions."""

from conftest import print_block

from repro.analysis import format_pct, render_cdf
from repro.core import figure3

#: Paper medians: DNS 14, TLS 16, ideal IP 13, ideal ORIGIN 5;
#: ORIGIN reduces DNS by ~64% and TLS by ~67%.
PAPER = {"dns": 14, "tls": 16, "ip": 13, "origin": 5,
         "dns_reduction": 0.64, "tls_reduction": 0.67}


def test_figure3(benchmark, archives):
    data = benchmark(figure3, archives)
    print_block(render_cdf(
        "Figure 3 -- per-page DNS/TLS counts "
        f"(paper medians: measured {PAPER['dns']}/{PAPER['tls']}, "
        f"ideal IP {PAPER['ip']}, ideal ORIGIN {PAPER['origin']})",
        [
            ("measured DNS", data.measured_dns),
            ("measured TLS", data.measured_tls),
            ("ideal IP", data.ideal_ip),
            ("ideal ORIGIN", data.ideal_origin),
        ],
    ))
    reductions = data.reduction_vs_measured()
    print("reductions vs measured: "
          + ", ".join(f"{k}={format_pct(v)}"
                      for k, v in reductions.items()))
    stats = data.validation_percentiles()
    print(f"validations p75: {stats['measured_p75']:.0f} -> "
          f"{stats['ideal_p75']:.0f} "
          f"(paper: 30 -> 9); IQR {stats['measured_iqr']:.0f} -> "
          f"{stats['ideal_iqr']:.0f} (paper: 22 -> 6)")

    medians = data.medians()
    assert medians["ideal_origin"] < medians["ideal_ip"] \
        <= medians["measured_tls"]
    assert reductions["origin_tls_reduction"] > 0.45
    assert reductions["origin_dns_reduction"] > 0.25
    assert reductions["ip_dns_reduction"] < \
        reductions["origin_dns_reduction"]
